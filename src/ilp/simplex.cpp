// Sparse bounded-variable revised simplex and warm-started branch-and-bound.
//
// The solver targets the IPET problems built by ucp_wcet: a few hundred to
// a couple thousand non-negative variables, flow-conservation equalities,
// and loop-bound inequalities, with 2-4 nonzeros per column. Unlike the
// retained dense oracle (dense_reference.cpp) it keeps the constraint
// matrix in CSC form, handles variable bounds implicitly (no bound rows,
// no artificials for x >= l), and maintains an explicit basis inverse with
// eta updates, so a pivot costs O(m * touched) instead of O(m * ncols)
// over a tableau inflated with one row per bound.
//
// Pricing is Dantzig with the same Bland's-rule fallback and the same
// deterministic smallest-index tie-breaking discipline as the dense
// solver: entering columns scan ascending with strict improvement, the
// ratio test breaks ties on the smallest basic variable index. Phase 1 is
// a piecewise-linear infeasibility minimization run once per SparseLp;
// solves start from that canonical snapshot, and branch-and-bound children
// reinstate the parent's optimal basis with the dual simplex.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "ilp/model.hpp"
#include "ilp/sparse.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/cancellation.hpp"
#include "support/check.hpp"
#include "support/fault_injection.hpp"

namespace ucp::ilp {
namespace detail {

constexpr double kEps = 1e-9;      // pricing / ratio-test comparisons
constexpr double kPivTol = 1e-9;   // minimum admissible pivot magnitude
constexpr double kFeasTol = 1e-7;  // bound-violation threshold
constexpr double kTiny = 1e-12;    // skip threshold for eta row updates

using VS = std::uint8_t;
constexpr VS kAtLower = 0;
constexpr VS kAtUpper = 1;
constexpr VS kBasic = 2;

/// Mutable solve state cloned from a SparseLp's canonical snapshot. All
/// simplex variants (primal, phase-1 repair, dual reinstatement) operate
/// on this; the owning SparseLp is never written after construction.
struct SimplexWorker {
  const SparseLp* lp = nullptr;

  // Per-node bounds (branch-and-bound tightens these copies).
  std::vector<double> lo, up;
  // Basis state.
  std::vector<double> x;
  std::vector<std::uint8_t> vstat;
  std::vector<std::int32_t> basis;
  std::vector<double> binv;  ///< row-major m x m
  // Objective (maximize form, zero on slacks) and reduced costs.
  std::vector<double> cost, d;
  bool bound_conflict = false;

  // Scratch.
  std::vector<double> alpha;  ///< Binv * A_enter
  std::vector<double> zrow;   ///< pivot row of Binv * A over all columns
  std::vector<double> y;      ///< dual prices / phase-1 prices
  std::vector<double> rhs;
  std::vector<std::int8_t> g;  ///< phase-1 infeasibility gradient per row

  std::size_t m() const { return lp->m_; }
  std::size_t n() const { return lp->n_; }
  std::size_t total() const { return lp->total_; }

  void init_from(const SparseLp& l) {
    lp = &l;
    lo = l.lower_;
    up = l.upper_;
    x = l.x_;
    vstat = l.vstat_;
    basis = l.basis_;
    binv = l.binv_;
    cost.assign(l.total_, 0.0);
    d.assign(l.total_, 0.0);
    bound_conflict = false;
    alpha.resize(l.m_);
    zrow.resize(l.total_);
    y.resize(l.m_);
    rhs.resize(l.m_);
    g.resize(l.m_);
  }

  void set_cost(const std::vector<double>& obj) {
    std::fill(cost.begin(), cost.end(), 0.0);
    const std::size_t k = std::min(obj.size(), n());
    std::copy(obj.begin(), obj.begin() + static_cast<std::ptrdiff_t>(k),
              cost.begin());
  }

  /// alpha = Binv * A_j. Slack columns are unit vectors.
  void ftran(std::int32_t j) {
    const std::size_t mm = m();
    if (static_cast<std::size_t>(j) >= n()) {
      const std::size_t i = static_cast<std::size_t>(j) - n();
      for (std::size_t r = 0; r < mm; ++r) alpha[r] = binv[r * mm + i];
      return;
    }
    const std::int32_t kb = lp->col_ptr_[static_cast<std::size_t>(j)];
    const std::int32_t ke = lp->col_ptr_[static_cast<std::size_t>(j) + 1];
    for (std::size_t r = 0; r < mm; ++r) {
      const double* br = &binv[r * mm];
      double s = 0.0;
      for (std::int32_t k = kb; k < ke; ++k)
        s += lp->val_[static_cast<std::size_t>(k)] *
             br[lp->row_idx_[static_cast<std::size_t>(k)]];
      alpha[r] = s;
    }
  }

  /// zrow[j] = (row r of Binv) . A_j for every column.
  void compute_pivot_row(std::size_t r) {
    const std::size_t mm = m();
    const double* rho = &binv[r * mm];
    for (std::size_t j = 0; j < n(); ++j) {
      const std::int32_t kb = lp->col_ptr_[j];
      const std::int32_t ke = lp->col_ptr_[j + 1];
      double s = 0.0;
      for (std::int32_t k = kb; k < ke; ++k)
        s += lp->val_[static_cast<std::size_t>(k)] *
             rho[lp->row_idx_[static_cast<std::size_t>(k)]];
      zrow[j] = s;
    }
    for (std::size_t i = 0; i < mm; ++i) zrow[n() + i] = rho[i];
  }

  /// y = c_B^T Binv; d_j = cost_j - y . A_j; d is exactly 0 on the basis.
  void compute_reduced_costs() {
    const std::size_t mm = m();
    std::fill(y.begin(), y.end(), 0.0);
    for (std::size_t i = 0; i < mm; ++i) {
      const double cb = cost[static_cast<std::size_t>(basis[i])];
      if (cb == 0.0) continue;
      const double* br = &binv[i * mm];
      for (std::size_t t = 0; t < mm; ++t) y[t] += cb * br[t];
    }
    for (std::size_t j = 0; j < n(); ++j) {
      const std::int32_t kb = lp->col_ptr_[j];
      const std::int32_t ke = lp->col_ptr_[j + 1];
      double s = 0.0;
      for (std::int32_t k = kb; k < ke; ++k)
        s += lp->val_[static_cast<std::size_t>(k)] *
             y[lp->row_idx_[static_cast<std::size_t>(k)]];
      d[j] = cost[j] - s;
    }
    for (std::size_t i = 0; i < mm; ++i) d[n() + i] = cost[n() + i] - y[i];
    for (std::size_t i = 0; i < mm; ++i)
      d[static_cast<std::size_t>(basis[i])] = 0.0;
  }

  /// Product-form update of Binv for entering column e pivoting in row r;
  /// `alpha` must hold Binv * A_e. Rows with a negligible multiplier are
  /// untouched, which keeps early (near-identity) updates cheap.
  void update_binv(std::size_t r, std::int32_t e) {
    const std::size_t mm = m();
    const double piv = alpha[r];
    UCP_CHECK(std::abs(piv) > kTiny);
    double* rowr = &binv[r * mm];
    const double inv = 1.0 / piv;
    for (std::size_t t = 0; t < mm; ++t) rowr[t] *= inv;
    for (std::size_t i = 0; i < mm; ++i) {
      if (i == r) continue;
      const double f = alpha[i];
      if (std::abs(f) <= kTiny) continue;
      double* rowi = &binv[i * mm];
      for (std::size_t t = 0; t < mm; ++t) rowi[t] -= f * rowr[t];
    }
    basis[r] = e;
  }

  /// Recomputes basic values exactly from the current nonbasic assignment:
  /// x_B = Binv (b - A_N x_N). Kills the drift of incremental updates so
  /// extracted solutions (and llround'ed edge counts downstream) are clean.
  void refresh_basic_values() {
    const std::size_t mm = m();
    rhs = lp->b_;
    for (std::size_t j = 0; j < total(); ++j) {
      if (vstat[j] == kBasic) continue;
      const double xj = (vstat[j] == kAtLower) ? lo[j] : up[j];
      x[j] = xj;
      if (xj == 0.0) continue;
      if (j < n()) {
        const std::int32_t kb = lp->col_ptr_[j];
        const std::int32_t ke = lp->col_ptr_[j + 1];
        for (std::int32_t k = kb; k < ke; ++k)
          rhs[lp->row_idx_[static_cast<std::size_t>(k)]] -=
              xj * lp->val_[static_cast<std::size_t>(k)];
      } else {
        rhs[j - n()] -= xj;
      }
    }
    for (std::size_t i = 0; i < mm; ++i) {
      const double* br = &binv[i * mm];
      double s = 0.0;
      for (std::size_t t = 0; t < mm; ++t) s += br[t] * rhs[t];
      x[static_cast<std::size_t>(basis[i])] = s;
    }
  }

  /// Tightens [lo, up] of `v` (branch-and-bound child bound). Nonbasic
  /// variables are shifted onto the moved bound immediately; a basic
  /// variable simply becomes primal infeasible for the dual simplex (or
  /// phase-1 repair) to fix.
  void apply_bound(std::int32_t v, double new_lo, double new_up) {
    const auto vv = static_cast<std::size_t>(v);
    lo[vv] = std::max(lo[vv], new_lo);
    up[vv] = std::min(up[vv], new_up);
    if (lo[vv] > up[vv] + kFeasTol) {
      bound_conflict = true;
      return;
    }
    if (vstat[vv] == kBasic) return;
    const double nx = (vstat[vv] == kAtLower) ? lo[vv] : up[vv];
    const double dx = nx - x[vv];
    if (dx == 0.0) return;
    ftran(v);
    for (std::size_t i = 0; i < m(); ++i) {
      if (std::abs(alpha[i]) > kTiny)
        x[static_cast<std::size_t>(basis[i])] -= dx * alpha[i];
    }
    x[vv] = nx;
  }

  /// Applies a primal step of `theta` along entering variable e (direction
  /// `dir`); `alpha` holds Binv * A_e.
  void move_along(std::int32_t e, int dir, double theta) {
    const double step = dir * theta;
    if (step != 0.0) {
      for (std::size_t i = 0; i < m(); ++i) {
        if (std::abs(alpha[i]) > kTiny)
          x[static_cast<std::size_t>(basis[i])] -= step * alpha[i];
      }
    }
    x[static_cast<std::size_t>(e)] += step;
  }

  /// Updates the maintained reduced costs for a pivot in row r with
  /// entering column e; must run on the *pre-update* basis inverse.
  void update_reduced_costs(std::size_t r, std::int32_t e) {
    compute_pivot_row(r);
    const double dratio = d[static_cast<std::size_t>(e)] / alpha[r];
    if (dratio != 0.0) {
      for (std::size_t j = 0; j < total(); ++j) d[j] -= dratio * zrow[j];
    }
    d[static_cast<std::size_t>(e)] = 0.0;
  }

  /// Phase 2 primal simplex: assumes a primal-feasible basis and current
  /// reduced costs `d`; maximizes `cost`. Dantzig pricing, Bland fallback,
  /// dense-compatible deterministic tie-breaking.
  SolveStatus primal(const SolveOptions& options, SolveStats& stats,
                     bool with_fault) {
    const std::size_t mm = m();
    const std::size_t nn = total();
    std::uint64_t iters = 0;
    std::uint64_t since_refresh = 0;
    const std::uint64_t bland_after = 4 * (mm + nn) + 64;
    while (true) {
      throw_if_cancelled("sparse simplex (primal)");
      if (iters++ > options.max_pivots ||
          (with_fault && UCP_FAULT_POINT("ilp.pivot")))
        return SolveStatus::kIterationLimit;
      const bool bland = iters > bland_after;

      // Entering column: ascending scan, strict improvement => smallest
      // index among ties, exactly like the dense objective-row scan.
      std::int32_t e = -1;
      int dir = 0;
      double best = kEps;
      for (std::size_t j = 0; j < nn; ++j) {
        if (vstat[j] == kBasic || lo[j] == up[j]) continue;
        const double dj = d[j];
        if (vstat[j] == kAtLower) {
          if (dj > best) {
            best = dj;
            e = static_cast<std::int32_t>(j);
            dir = +1;
            if (bland) break;
          }
        } else {
          if (-dj > best) {
            best = -dj;
            e = static_cast<std::int32_t>(j);
            dir = -1;
            if (bland) break;
          }
        }
      }
      if (e < 0) return SolveStatus::kOptimal;
      const auto ee = static_cast<std::size_t>(e);
      ftran(e);

      // Ratio test: smallest step, ties to the smallest basic variable
      // index (as in the dense tableau); the entering variable's own
      // range competes as a bound flip, losing ties to row pivots.
      double theta = kInfinity;
      std::ptrdiff_t blocker = -1;  // -1 unbounded, -2 bound flip, else row
      if (up[ee] != kInfinity && lo[ee] != -kInfinity) {
        theta = up[ee] - lo[ee];
        blocker = -2;
      }
      for (std::size_t i = 0; i < mm; ++i) {
        const double delta = dir * alpha[i];
        const auto bi = static_cast<std::size_t>(basis[i]);
        double r;
        if (delta > kPivTol) {
          if (lo[bi] == -kInfinity) continue;
          r = (x[bi] - lo[bi]) / delta;
        } else if (delta < -kPivTol) {
          if (up[bi] == kInfinity) continue;
          r = (up[bi] - x[bi]) / (-delta);
        } else {
          continue;
        }
        if (r < 0.0) r = 0.0;  // feasibility drift within tolerance
        if (blocker == -1 || r < theta - kEps) {
          theta = r;
          blocker = static_cast<std::ptrdiff_t>(i);
        } else if (r < theta + kEps) {
          if (blocker == -2) {
            if (r < theta) theta = r;
            blocker = static_cast<std::ptrdiff_t>(i);
          } else if (basis[i] < basis[static_cast<std::size_t>(blocker)]) {
            if (r < theta) theta = r;
            blocker = static_cast<std::ptrdiff_t>(i);
          }
        }
      }
      if (blocker == -1) return SolveStatus::kUnbounded;

      if (blocker == -2) {
        // Bound flip: the entering variable crosses its whole range
        // without any basic hitting a bound; the basis is unchanged.
        move_along(e, dir, theta);
        x[ee] = (dir > 0) ? up[ee] : lo[ee];
        vstat[ee] = (dir > 0) ? kAtUpper : kAtLower;
        ++stats.pivots;
        continue;
      }

      const auto r = static_cast<std::size_t>(blocker);
      const auto bl = static_cast<std::size_t>(basis[r]);
      move_along(e, dir, theta);
      if (dir * alpha[r] > 0.0) {
        x[bl] = lo[bl];
        vstat[bl] = kAtLower;
      } else {
        x[bl] = up[bl];
        vstat[bl] = kAtUpper;
      }
      update_reduced_costs(r, e);
      vstat[ee] = kBasic;
      update_binv(r, e);
      ++stats.pivots;
      if (++since_refresh >= 256) {
        // Guard the incrementally maintained reduced costs against drift.
        since_refresh = 0;
        compute_reduced_costs();
      }
    }
  }

  /// Phase 1: piecewise-linear infeasibility minimization. Drives every
  /// basic variable into its [lo, up] box; the gradient (-1 below, +1
  /// above) is recomputed each iteration, so bound crossings are handled
  /// by blocking at the crossed bound. Does not touch `cost`/`d`.
  SolveStatus phase1(std::uint64_t max_pivots, SolveStats& stats,
                     bool with_fault) {
    const std::size_t mm = m();
    const std::size_t nn = total();
    std::uint64_t iters = 0;
    const std::uint64_t bland_after = 4 * (mm + nn) + 64;
    while (true) {
      bool any = false;
      for (std::size_t i = 0; i < mm; ++i) {
        const auto bi = static_cast<std::size_t>(basis[i]);
        if (x[bi] < lo[bi] - kFeasTol) {
          g[i] = -1;
          any = true;
        } else if (x[bi] > up[bi] + kFeasTol) {
          g[i] = +1;
          any = true;
        } else {
          g[i] = 0;
        }
      }
      if (!any) return SolveStatus::kOptimal;
      throw_if_cancelled("sparse simplex (phase 1)");
      if (iters++ > max_pivots ||
          (with_fault && UCP_FAULT_POINT("ilp.pivot")))
        return SolveStatus::kIterationLimit;
      const bool bland = iters > bland_after;

      // Prices of the infeasibility objective: y = g^T Binv (sparse in g).
      std::fill(y.begin(), y.end(), 0.0);
      for (std::size_t i = 0; i < mm; ++i) {
        if (g[i] == 0) continue;
        const double gi = g[i];
        const double* br = &binv[i * mm];
        for (std::size_t t = 0; t < mm; ++t) y[t] += gi * br[t];
      }

      // Entering: steepest decrease of the infeasibility sum; the
      // derivative of f along +x_j is -(y . A_j).
      std::int32_t e = -1;
      int dir = 0;
      double best = kEps;
      for (std::size_t j = 0; j < nn; ++j) {
        if (vstat[j] == kBasic || lo[j] == up[j]) continue;
        double s;
        if (j < n()) {
          const std::int32_t kb = lp->col_ptr_[j];
          const std::int32_t ke = lp->col_ptr_[j + 1];
          s = 0.0;
          for (std::int32_t k = kb; k < ke; ++k)
            s += lp->val_[static_cast<std::size_t>(k)] *
                 y[lp->row_idx_[static_cast<std::size_t>(k)]];
        } else {
          s = y[j - n()];
        }
        const double df = -s;  // df/dx_j
        if (vstat[j] == kAtLower) {
          if (-df > best) {
            best = -df;
            e = static_cast<std::int32_t>(j);
            dir = +1;
            if (bland) break;
          }
        } else {
          if (df > best) {
            best = df;
            e = static_cast<std::int32_t>(j);
            dir = -1;
            if (bland) break;
          }
        }
      }
      if (e < 0) return SolveStatus::kInfeasible;
      const auto ee = static_cast<std::size_t>(e);
      ftran(e);

      double theta = kInfinity;
      std::ptrdiff_t blocker = -1;
      if (up[ee] != kInfinity && lo[ee] != -kInfinity) {
        theta = up[ee] - lo[ee];
        blocker = -2;
      }
      for (std::size_t i = 0; i < mm; ++i) {
        const double delta = dir * alpha[i];
        const auto bi = static_cast<std::size_t>(basis[i]);
        double r;
        if (g[i] < 0) {
          // Below its lower bound and moving up: blocks on arrival.
          if (delta >= -kPivTol) continue;
          r = (lo[bi] - x[bi]) / (-delta);
        } else if (g[i] > 0) {
          if (delta <= kPivTol) continue;
          r = (x[bi] - up[bi]) / delta;
        } else if (delta > kPivTol) {
          if (lo[bi] == -kInfinity) continue;
          r = (x[bi] - lo[bi]) / delta;
        } else if (delta < -kPivTol) {
          if (up[bi] == kInfinity) continue;
          r = (up[bi] - x[bi]) / (-delta);
        } else {
          continue;
        }
        if (r < 0.0) r = 0.0;
        if (blocker == -1 || r < theta - kEps) {
          theta = r;
          blocker = static_cast<std::ptrdiff_t>(i);
        } else if (r < theta + kEps) {
          if (blocker == -2) {
            if (r < theta) theta = r;
            blocker = static_cast<std::ptrdiff_t>(i);
          } else if (basis[i] < basis[static_cast<std::size_t>(blocker)]) {
            if (r < theta) theta = r;
            blocker = static_cast<std::ptrdiff_t>(i);
          }
        }
      }
      // A decreasing infeasibility sum is bounded below by zero, so some
      // blocker must exist; bail out defensively if numerics disagree.
      if (blocker == -1) return SolveStatus::kIterationLimit;

      if (blocker == -2) {
        move_along(e, dir, theta);
        x[ee] = (dir > 0) ? up[ee] : lo[ee];
        vstat[ee] = (dir > 0) ? kAtUpper : kAtLower;
        ++stats.pivots;
        continue;
      }

      const auto r = static_cast<std::size_t>(blocker);
      const auto bl = static_cast<std::size_t>(basis[r]);
      move_along(e, dir, theta);
      if (g[r] < 0) {
        x[bl] = lo[bl];
        vstat[bl] = kAtLower;
      } else if (g[r] > 0) {
        x[bl] = up[bl];
        vstat[bl] = kAtUpper;
      } else if (dir * alpha[r] > 0.0) {
        x[bl] = lo[bl];
        vstat[bl] = kAtLower;
      } else {
        x[bl] = up[bl];
        vstat[bl] = kAtUpper;
      }
      vstat[ee] = kBasic;
      update_binv(r, e);
      ++stats.pivots;
    }
  }

  /// Dual simplex: assumes dual-feasible reduced costs `d` (inherited from
  /// the parent's optimal basis) and repairs primal feasibility after a
  /// branch bound tightened the box. Leaving row = largest violation,
  /// entering = smallest dual ratio |d_j|/|z_j|, both with smallest-index
  /// tie-breaking; Bland fallback after the usual pivot budget.
  SolveStatus dual(const SolveOptions& options, SolveStats& stats) {
    const std::size_t mm = m();
    const std::size_t nn = total();
    std::uint64_t iters = 0;
    const std::uint64_t bland_after = 4 * (mm + nn) + 64;
    while (true) {
      std::ptrdiff_t r = -1;
      int sigma = 0;
      double worst = kFeasTol;
      for (std::size_t i = 0; i < mm; ++i) {
        const auto bi = static_cast<std::size_t>(basis[i]);
        const double below = lo[bi] - x[bi];
        const double above = x[bi] - up[bi];
        if (below > worst) {
          worst = below;
          r = static_cast<std::ptrdiff_t>(i);
          sigma = +1;
        }
        if (above > worst) {
          worst = above;
          r = static_cast<std::ptrdiff_t>(i);
          sigma = -1;
        }
      }
      if (r < 0) return SolveStatus::kOptimal;
      throw_if_cancelled("sparse simplex (dual)");
      if (iters++ > options.max_pivots || UCP_FAULT_POINT("ilp.pivot"))
        return SolveStatus::kIterationLimit;
      const bool bland = iters > bland_after;

      const auto rr = static_cast<std::size_t>(r);
      compute_pivot_row(rr);

      std::int32_t e = -1;
      double best_ratio = kInfinity;
      for (std::size_t j = 0; j < nn; ++j) {
        if (vstat[j] == kBasic || lo[j] == up[j]) continue;
        const double zj = zrow[j];
        const bool eligible = (vstat[j] == kAtLower) ? (sigma * zj < -kPivTol)
                                                     : (sigma * zj > kPivTol);
        if (!eligible) continue;
        if (bland) {
          e = static_cast<std::int32_t>(j);
          break;
        }
        const double ratio = std::abs(d[j]) / std::abs(zj);
        if (e < 0 || ratio < best_ratio - kEps) {
          e = static_cast<std::int32_t>(j);
          best_ratio = ratio;
        } else if (ratio < best_ratio) {
          best_ratio = ratio;  // tie within kEps: keep the smaller index
        }
      }
      if (e < 0) return SolveStatus::kInfeasible;  // dual unbounded

      const auto ee = static_cast<std::size_t>(e);
      ftran(e);
      const auto bl = static_cast<std::size_t>(basis[rr]);
      const double target = (sigma > 0) ? lo[bl] : up[bl];
      // x_bl' = x_bl - alpha_r * step  =>  step drives it onto the bound.
      const double step = (x[bl] - target) / alpha[rr];
      for (std::size_t i = 0; i < mm; ++i) {
        if (std::abs(alpha[i]) > kTiny)
          x[static_cast<std::size_t>(basis[i])] -= step * alpha[i];
      }
      x[ee] = ((vstat[ee] == kAtLower) ? lo[ee] : up[ee]) + step;
      x[bl] = target;
      vstat[bl] = (sigma > 0) ? kAtLower : kAtUpper;
      // zrow was computed for row rr on the pre-update inverse: reuse it.
      const double dratio = d[ee] / alpha[rr];
      if (dratio != 0.0) {
        for (std::size_t j = 0; j < nn; ++j) d[j] -= dratio * zrow[j];
      }
      d[ee] = 0.0;
      vstat[ee] = kBasic;
      update_binv(rr, e);
      ++stats.pivots;
    }
  }

  double objective_value() const {
    double s = 0.0;
    for (std::size_t j = 0; j < n(); ++j) s += cost[j] * x[j];
    return s;
  }
};

}  // namespace detail

// --- SparseLp ---------------------------------------------------------------

SparseLp::SparseLp(const Model& model) {
  n_ = model.num_vars();
  m_ = model.num_constraints();
  total_ = n_ + m_;

  lower_.resize(total_);
  upper_.resize(total_);
  integer_.resize(n_);
  for (std::size_t v = 0; v < n_; ++v) {
    const auto& var = model.var(static_cast<VarId>(v));
    lower_[v] = var.lower;
    upper_[v] = var.upper;
    integer_[v] = var.integer ? 1 : 0;
  }

  b_.resize(m_);
  struct Entry {
    std::int32_t col;
    std::int32_t row;
    double val;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < m_; ++i) {
    const auto& c = model.constraints()[i];
    b_[i] = c.rhs;
    for (const Term& t : c.terms)
      entries.push_back(Entry{t.var, static_cast<std::int32_t>(i), t.coeff});
    // Slack bounds encode the relation of the equality-form row
    // A x + s = b:  kLe -> s in [0, inf), kGe -> s in (-inf, 0],
    // kEq -> s fixed at 0.
    const std::size_t sj = n_ + i;
    switch (c.rel) {
      case Rel::kLe:
        lower_[sj] = 0.0;
        upper_[sj] = kInfinity;
        break;
      case Rel::kGe:
        lower_[sj] = -kInfinity;
        upper_[sj] = 0.0;
        break;
      case Rel::kEq:
        lower_[sj] = 0.0;
        upper_[sj] = 0.0;
        break;
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.col != b.col ? a.col < b.col : a.row < b.row;
            });
  col_ptr_.assign(n_ + 1, 0);
  row_idx_.reserve(entries.size());
  val_.reserve(entries.size());
  for (std::size_t k = 0; k < entries.size();) {
    // Merge duplicate (row, col) terms by summing, as the dense build did.
    std::size_t k2 = k + 1;
    double v = entries[k].val;
    while (k2 < entries.size() && entries[k2].col == entries[k].col &&
           entries[k2].row == entries[k].row) {
      v += entries[k2].val;
      ++k2;
    }
    row_idx_.push_back(entries[k].row);
    val_.push_back(v);
    ++col_ptr_[static_cast<std::size_t>(entries[k].col) + 1];
    k = k2;
  }
  for (std::size_t j = 0; j < n_; ++j) col_ptr_[j + 1] += col_ptr_[j];

  // Canonical start: all slacks basic (Binv = I), structural variables at
  // their (finite, model-enforced) lower bounds.
  x_.assign(total_, 0.0);
  vstat_.assign(total_, kAtLower);
  basis_.resize(m_);
  for (std::size_t v = 0; v < n_; ++v) x_[v] = lower_[v];
  for (std::size_t i = 0; i < m_; ++i) {
    basis_[i] = static_cast<std::int32_t>(n_ + i);
    vstat_[n_ + i] = kBasic;
  }
  for (std::size_t i = 0; i < m_; ++i) x_[n_ + i] = b_[i];
  for (std::size_t j = 0; j < n_; ++j) {
    const double xj = x_[j];
    if (xj == 0.0) continue;
    for (std::int32_t k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k)
      x_[n_ + static_cast<std::size_t>(
                  row_idx_[static_cast<std::size_t>(k)])] -=
          xj * val_[static_cast<std::size_t>(k)];
  }
  binv_.assign(m_ * m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) binv_[i * m_ + i] = 1.0;

  // One-time phase 1 builds the canonical feasible basis every later solve
  // clones. No fault point here: construction is not a per-case solve.
  detail::SimplexWorker w;
  w.init_from(*this);
  SolveStats stats;
  canonical_status_ =
      w.phase1(SolveOptions{}.max_pivots, stats, /*with_fault=*/false);
  construction_pivots_ = stats.pivots;
  if (obs::enabled()) {
    // Live counterpart of IpetSystem::charge_construction: per-solve stats
    // deliberately exclude this one-time work, so reconciling the
    // row-derived exp.sweep.pivots against live ilp.solve.pivots needs the
    // construction side published too (see DESIGN.md §14):
    //   exp.sweep.pivots == ilp.solve.pivots + ilp.solve.construction_pivots
    // on clean (single-attempt, no-retry) sweeps.
    static obs::Counter& c_ctor =
        obs::registry().counter("ilp.solve.constructions");
    static obs::Counter& c_cpiv =
        obs::registry().counter("ilp.solve.construction_pivots");
    c_ctor.increment();
    c_cpiv.add(construction_pivots_);
  }
  if (canonical_status_ == SolveStatus::kOptimal) {
    w.refresh_basic_values();
    x_ = std::move(w.x);
    vstat_ = std::move(w.vstat);
    basis_ = std::move(w.basis);
    binv_ = std::move(w.binv);
  }
}

namespace {

Solution extract(const detail::SimplexWorker& w, SolveStatus status,
                 SolveStats stats) {
  Solution solution;
  solution.status = status;
  solution.stats = stats;
  if (status != SolveStatus::kOptimal) return solution;
  solution.values.assign(w.x.begin(),
                         w.x.begin() + static_cast<std::ptrdiff_t>(w.n()));
  solution.objective = w.objective_value();
  return solution;
}

}  // namespace

namespace {

/// One registry add per solve, after the stats are final — the simplex's
/// inner loops never touch shared atomics (DESIGN.md §11).
void publish_solve_stats(const SolveStats& stats) {
  if (!obs::enabled()) return;
  static obs::Counter& c_solves =
      obs::registry().counter("ilp.solve.lp_solves");
  static obs::Counter& c_pivots = obs::registry().counter("ilp.solve.pivots");
  static obs::Counter& c_nodes = obs::registry().counter("ilp.solve.bb_nodes");
  static obs::Counter& c_warm =
      obs::registry().counter("ilp.solve.warm_starts");
  static obs::Counter& c_skip =
      obs::registry().counter("ilp.solve.phase1_skipped");
  c_solves.add(stats.lp_solves);
  c_pivots.add(stats.pivots);
  c_nodes.add(stats.bb_nodes);
  c_warm.add(stats.warm_starts);
  c_skip.add(stats.phase1_skipped);
}

}  // namespace

Solution SparseLp::solve_lp_with(const std::vector<double>& obj,
                                 const SolveOptions& options) const {
  obs::Span span("ilp.solve.lp");
  SolveStats stats;
  stats.lp_solves = 1;
  if (canonical_status_ != SolveStatus::kOptimal) {
    Solution solution;
    solution.status = canonical_status_;
    solution.stats = stats;
    publish_solve_stats(solution.stats);
    return solution;
  }
  stats.phase1_skipped = 1;
  detail::SimplexWorker w;
  w.init_from(*this);
  w.set_cost(obj);
  w.compute_reduced_costs();
  const SolveStatus status = w.primal(options, stats, /*with_fault=*/true);
  if (status == SolveStatus::kOptimal) w.refresh_basic_values();
  Solution solution = extract(w, status, stats);
  publish_solve_stats(solution.stats);
  return solution;
}

Solution SparseLp::solve_ilp_with(const std::vector<double>& obj,
                                  const SolveOptions& options) const {
  struct NodeBound {
    std::int32_t var;
    double lo;
    double up;
  };
  struct Node {
    std::vector<NodeBound> path;  ///< bound overrides along the B&B path
    std::shared_ptr<const detail::SimplexWorker> parent;  ///< optimal state
  };

  obs::Span span("ilp.solve.bb");
  Solution best;
  best.status = SolveStatus::kInfeasible;
  bool have_best = false;
  SolveStats stats;

  std::vector<Node> stack;
  stack.push_back({});
  std::uint64_t nodes = 0;
  SolveStatus worst_failure = SolveStatus::kInfeasible;

  while (!stack.empty()) {
    throw_if_cancelled("branch-and-bound");
    if (++nodes > options.max_bb_nodes || UCP_FAULT_POINT("ilp.bb_node")) {
      if (!have_best) best.status = SolveStatus::kIterationLimit;
      best.stats = stats;
      publish_solve_stats(best.stats);
      return best;
    }
    stats.bb_nodes = nodes;
    Node node = std::move(stack.back());
    stack.pop_back();

    // Solve the node relaxation.
    detail::SimplexWorker w;
    SolveStatus status;
    ++stats.lp_solves;
    if (canonical_status_ != SolveStatus::kOptimal) {
      status = canonical_status_;
    } else if (node.parent && options.warm_start) {
      // Warm start: reinstate the parent's optimal basis, tighten the one
      // new bound, and let the dual simplex repair primal feasibility.
      w = *node.parent;
      ++stats.warm_starts;
      ++stats.phase1_skipped;
      const NodeBound& nb = node.path.back();
      w.apply_bound(nb.var, nb.lo, nb.up);
      if (w.bound_conflict) {
        status = SolveStatus::kInfeasible;
      } else {
        status = w.dual(options, stats);
        if (status == SolveStatus::kOptimal)
          status = w.primal(options, stats, /*with_fault=*/true);
      }
    } else {
      // Cold node: clone the canonical snapshot, apply the accumulated
      // path bounds, repair with phase 1, then optimize.
      w.init_from(*this);
      w.set_cost(obj);
      for (const NodeBound& nb : node.path) w.apply_bound(nb.var, nb.lo, nb.up);
      if (w.bound_conflict) {
        status = SolveStatus::kInfeasible;
      } else if (node.path.empty()) {
        ++stats.phase1_skipped;  // root: canonical basis is already feasible
        w.compute_reduced_costs();
        status = w.primal(options, stats, /*with_fault=*/true);
      } else {
        status = w.phase1(options.max_pivots, stats, /*with_fault=*/true);
        if (status == SolveStatus::kOptimal) {
          w.compute_reduced_costs();
          status = w.primal(options, stats, /*with_fault=*/true);
        }
      }
    }

    if (status == SolveStatus::kUnbounded ||
        status == SolveStatus::kIterationLimit) {
      worst_failure = status;
      continue;
    }
    if (status != SolveStatus::kOptimal) continue;
    w.refresh_basic_values();
    const double objective = w.objective_value();
    if (have_best && objective <= best.objective + options.int_tolerance)
      continue;  // bound: cannot beat incumbent

    // Find the most fractional integer variable (strict >, so the smallest
    // index wins ties — same rule as the dense branch-and-bound).
    std::int32_t branch_var = -1;
    double branch_frac = options.int_tolerance;
    for (std::size_t v = 0; v < n_; ++v) {
      if (!integer_[v]) continue;
      const double xv = w.x[v];
      const double frac = std::abs(xv - std::round(xv));
      if (frac > branch_frac) {
        branch_frac = frac;
        branch_var = static_cast<std::int32_t>(v);
      }
    }
    if (branch_var < 0) {
      // Integral: candidate incumbent.
      if (!have_best || objective > best.objective) {
        best.status = SolveStatus::kOptimal;
        best.objective = objective;
        best.values.assign(
            w.x.begin(), w.x.begin() + static_cast<std::ptrdiff_t>(n_));
        for (std::size_t v = 0; v < n_; ++v) {
          if (integer_[v]) best.values[v] = std::round(best.values[v]);
        }
        have_best = true;
      }
      continue;
    }

    const double xb = w.x[static_cast<std::size_t>(branch_var)];
    Node down;
    down.path = node.path;
    down.path.push_back(NodeBound{branch_var, -kInfinity, std::floor(xb)});
    Node up;
    up.path = node.path;
    up.path.push_back(NodeBound{branch_var, std::ceil(xb), kInfinity});
    if (options.warm_start) {
      // Share one immutable snapshot of this node's optimal state between
      // both children. Cap resident snapshots on large systems: children
      // beyond the cap fall back to the cold path (deterministically —
      // the decision depends only on stack depth).
      if (m_ < 256 || stack.size() <= 64) {
        auto snap = std::make_shared<const detail::SimplexWorker>(std::move(w));
        down.parent = snap;
        up.parent = snap;
      }
    }
    // DFS; push "up" last so the larger-count branch (usually the WCET
    // direction) is explored first.
    stack.push_back(std::move(down));
    stack.push_back(std::move(up));
  }

  if (!have_best) best.status = worst_failure;
  best.stats = stats;
  publish_solve_stats(best.stats);
  return best;
}

// --- Model-level entry points ----------------------------------------------

namespace {

std::vector<double> signed_objective(const Model& model, double sign) {
  std::vector<double> obj(model.num_vars(), 0.0);
  for (const Term& t : model.objective())
    obj[static_cast<std::size_t>(t.var)] += sign * t.coeff;
  return obj;
}

}  // namespace

Solution solve_lp(const Model& model, const SolveOptions& options) {
  const double sign = model.maximize() ? 1.0 : -1.0;
  const SparseLp lp(model);
  Solution solution = lp.solve_lp_with(signed_objective(model, sign), options);
  solution.objective *= sign;
  // The one-shot API pays for construction phase 1 here, so account for it:
  // its pivots count, and the root's "skipped" phase 1 was not a skip.
  solution.stats.pivots += lp.construction_pivots();
  if (solution.stats.phase1_skipped > 0) --solution.stats.phase1_skipped;
  return solution;
}

Solution solve_ilp(const Model& model, const SolveOptions& options) {
  const double sign = model.maximize() ? 1.0 : -1.0;
  const SparseLp lp(model);
  Solution solution = lp.solve_ilp_with(signed_objective(model, sign), options);
  solution.objective *= sign;
  solution.stats.pivots += lp.construction_pivots();
  if (solution.stats.phase1_skipped > 0) --solution.stats.phase1_skipped;
  return solution;
}

}  // namespace ucp::ilp
