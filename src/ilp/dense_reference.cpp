// The original two-phase dense-tableau simplex, retained verbatim as the
// differential-testing oracle for the sparse bounded-variable kernel in
// simplex.cpp. It is deliberately boring: no warm starts, no fault points,
// every branch-and-bound node re-enters phase 1 from scratch. Nothing on a
// production path may call it; tests/ilp_differential_test.cpp and the
// micro benches are the only intended users.

#include <algorithm>
#include <cmath>
#include <vector>

#include "ilp/model.hpp"
#include "support/check.hpp"

namespace ucp::ilp {
namespace {

constexpr double kEps = 1e-9;

struct Row {
  std::vector<Term> terms;
  Rel rel;
  double rhs;
};

/// Flattens model constraints plus variable-bound rows into `rows`,
/// normalized so every rhs is non-negative.
std::vector<Row> build_rows(const Model& model,
                            const std::vector<Row>& extra_rows) {
  std::vector<Row> rows;
  for (const auto& c : model.constraints())
    rows.push_back(Row{c.terms, c.rel, c.rhs});
  for (const Row& r : extra_rows) rows.push_back(r);
  for (VarId v = 0; static_cast<std::size_t>(v) < model.num_vars(); ++v) {
    const auto& var = model.var(v);
    if (var.lower > 0.0)
      rows.push_back(Row{{Term{v, 1.0}}, Rel::kGe, var.lower});
    if (var.upper != kInfinity)
      rows.push_back(Row{{Term{v, 1.0}}, Rel::kLe, var.upper});
  }
  for (Row& r : rows) {
    if (r.rhs < 0.0) {
      for (Term& t : r.terms) t.coeff = -t.coeff;
      r.rhs = -r.rhs;
      if (r.rel == Rel::kLe)
        r.rel = Rel::kGe;
      else if (r.rel == Rel::kGe)
        r.rel = Rel::kLe;
    }
  }
  return rows;
}

class Tableau {
 public:
  Tableau(const Model& model, const std::vector<Row>& rows)
      : n_struct_(model.num_vars()), m_(rows.size()) {
    // Column layout: [structural | slack/surplus | artificial].
    std::size_t n_slack = 0;
    for (const Row& r : rows)
      if (r.rel != Rel::kEq) ++n_slack;
    std::size_t n_art = 0;
    for (const Row& r : rows)
      if (r.rel != Rel::kLe) ++n_art;

    ncols_ = n_struct_ + n_slack + n_art;
    a_.assign(m_ * ncols_, 0.0);
    b_.assign(m_, 0.0);
    basis_.assign(m_, -1);
    eligible_.assign(ncols_, true);
    artificial_.assign(ncols_, false);

    std::size_t next_slack = n_struct_;
    std::size_t next_art = n_struct_ + n_slack;
    for (std::size_t i = 0; i < m_; ++i) {
      const Row& r = rows[i];
      for (const Term& t : r.terms)
        at(i, static_cast<std::size_t>(t.var)) += t.coeff;
      b_[i] = r.rhs;
      switch (r.rel) {
        case Rel::kLe:
          at(i, next_slack) = 1.0;
          basis_[i] = static_cast<int>(next_slack);
          ++next_slack;
          break;
        case Rel::kGe:
          at(i, next_slack) = -1.0;
          ++next_slack;
          at(i, next_art) = 1.0;
          artificial_[next_art] = true;
          basis_[i] = static_cast<int>(next_art);
          ++next_art;
          break;
        case Rel::kEq:
          at(i, next_art) = 1.0;
          artificial_[next_art] = true;
          basis_[i] = static_cast<int>(next_art);
          ++next_art;
          break;
      }
    }
  }

  double& at(std::size_t i, std::size_t j) { return a_[i * ncols_ + j]; }
  double get(std::size_t i, std::size_t j) const { return a_[i * ncols_ + j]; }

  /// Installs the objective row for maximizing `c` (dense, size ncols_).
  void set_objective(const std::vector<double>& c) {
    obj_ = c;
    obj_.resize(ncols_, 0.0);
    obj_shift_ = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const auto bj = static_cast<std::size_t>(basis_[i]);
      const double cb = (bj < c.size()) ? c[bj] : 0.0;
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j < ncols_; ++j) obj_[j] -= cb * get(i, j);
      obj_shift_ += cb * b_[i];
    }
    for (std::size_t i = 0; i < m_; ++i)
      obj_[static_cast<std::size_t>(basis_[i])] = 0.0;
  }

  SolveStatus optimize(std::uint64_t max_pivots, SolveStats& stats) {
    std::uint64_t pivots = 0;
    // Switch to Bland's rule after this many pivots to break any cycle.
    const std::uint64_t bland_after = 4 * (m_ + ncols_) + 64;
    while (true) {
      if (pivots++ > max_pivots) return SolveStatus::kIterationLimit;
      const bool bland = pivots > bland_after;

      // Entering column.
      std::size_t enter = ncols_;
      double best = kEps;
      for (std::size_t j = 0; j < ncols_; ++j) {
        if (!eligible_[j]) continue;
        if (obj_[j] > best) {
          best = obj_[j];
          enter = j;
          if (bland) break;  // smallest-index positive column
        }
      }
      if (enter == ncols_) return SolveStatus::kOptimal;

      // Leaving row: minimum ratio, smallest basis index tie-break.
      std::size_t leave = m_;
      double best_ratio = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const double aij = get(i, enter);
        if (aij <= kEps) continue;
        const double ratio = b_[i] / aij;
        if (leave == m_ || ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && basis_[i] < basis_[leave])) {
          leave = i;
          best_ratio = ratio;
        }
      }
      if (leave == m_) return SolveStatus::kUnbounded;
      ++stats.pivots;
      pivot(leave, enter);
    }
  }

  void pivot(std::size_t row, std::size_t col) {
    const double p = get(row, col);
    UCP_CHECK(std::abs(p) > kEps);
    const double inv = 1.0 / p;
    for (std::size_t j = 0; j < ncols_; ++j) at(row, j) *= inv;
    b_[row] *= inv;
    at(row, col) = 1.0;

    for (std::size_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double f = get(i, col);
      if (std::abs(f) < kEps) {
        at(i, col) = 0.0;
        continue;
      }
      for (std::size_t j = 0; j < ncols_; ++j) at(i, j) -= f * get(row, j);
      b_[i] -= f * b_[row];
      at(i, col) = 0.0;
      if (b_[i] < 0.0 && b_[i] > -kEps) b_[i] = 0.0;
    }
    const double fo = obj_[col];
    if (std::abs(fo) > 0.0) {
      for (std::size_t j = 0; j < ncols_; ++j) obj_[j] -= fo * get(row, j);
      obj_shift_ += fo * b_[row];
      obj_[col] = 0.0;
    }
    basis_[row] = static_cast<int>(col);
  }

  /// Phase 1: drive artificials to zero; returns false if infeasible.
  bool phase1(std::uint64_t max_pivots, SolveStatus& status,
              SolveStats& stats) {
    bool any_artificial = false;
    for (std::size_t j = 0; j < ncols_; ++j) any_artificial |= artificial_[j];
    if (!any_artificial) {
      status = SolveStatus::kOptimal;
      return true;
    }
    std::vector<double> c(ncols_, 0.0);
    for (std::size_t j = 0; j < ncols_; ++j)
      if (artificial_[j]) c[j] = -1.0;
    set_objective(c);
    status = optimize(max_pivots, stats);
    if (status != SolveStatus::kOptimal) return false;
    if (obj_shift_ < -1e-7) {
      status = SolveStatus::kInfeasible;
      return false;
    }
    // Pivot basic artificials out where possible; redundant rows keep them
    // basic at zero, which is harmless once they cannot re-enter.
    for (std::size_t i = 0; i < m_; ++i) {
      const auto bj = static_cast<std::size_t>(basis_[i]);
      if (!artificial_[bj]) continue;
      for (std::size_t j = 0; j < ncols_; ++j) {
        if (artificial_[j]) continue;
        if (std::abs(get(i, j)) > 1e-7) {
          pivot(i, j);
          break;
        }
      }
    }
    for (std::size_t j = 0; j < ncols_; ++j)
      if (artificial_[j]) eligible_[j] = false;
    return true;
  }

  Solution run(const Model& model, const SolveOptions& options) {
    Solution solution;
    solution.stats.lp_solves = 1;
    SolveStatus status;
    if (!phase1(options.max_pivots, status, solution.stats)) {
      solution.status = status;
      return solution;
    }

    const double sign = model.maximize() ? 1.0 : -1.0;
    std::vector<double> c(ncols_, 0.0);
    for (const Term& t : model.objective())
      c[static_cast<std::size_t>(t.var)] += sign * t.coeff;
    set_objective(c);
    solution.status = optimize(options.max_pivots, solution.stats);
    if (solution.status != SolveStatus::kOptimal) return solution;

    solution.values.assign(model.num_vars(), 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const auto bj = static_cast<std::size_t>(basis_[i]);
      if (bj < model.num_vars())
        solution.values[bj] = std::max(0.0, b_[i]);
    }
    solution.objective = sign * obj_shift_;
    return solution;
  }

 private:
  std::size_t n_struct_;
  std::size_t m_;
  std::size_t ncols_ = 0;
  std::vector<double> a_;
  std::vector<double> b_;
  std::vector<double> obj_;
  double obj_shift_ = 0.0;
  std::vector<int> basis_;
  std::vector<bool> eligible_;
  std::vector<bool> artificial_;
};

Solution solve_lp_with_rows(const Model& model,
                            const std::vector<Row>& extra_rows,
                            const SolveOptions& options) {
  const std::vector<Row> rows = build_rows(model, extra_rows);
  Tableau tableau(model, rows);
  return tableau.run(model, options);
}

}  // namespace

Solution solve_lp_dense_reference(const Model& model,
                                  const SolveOptions& options) {
  return solve_lp_with_rows(model, {}, options);
}

Solution solve_ilp_dense_reference(const Model& model,
                                   const SolveOptions& options) {
  struct Node {
    std::vector<Row> bounds;
  };

  Solution best;
  best.status = SolveStatus::kInfeasible;
  bool have_best = false;
  const double sign = model.maximize() ? 1.0 : -1.0;
  SolveStats stats;

  std::vector<Node> stack;
  stack.push_back({});
  std::uint64_t nodes = 0;
  SolveStatus worst_failure = SolveStatus::kInfeasible;

  while (!stack.empty()) {
    if (++nodes > options.max_bb_nodes) {
      if (!have_best) best.status = SolveStatus::kIterationLimit;
      best.stats = stats;
      return best;
    }
    stats.bb_nodes = nodes;
    const Node node = std::move(stack.back());
    stack.pop_back();

    const Solution relaxed = solve_lp_with_rows(model, node.bounds, options);
    stats.add(relaxed.stats);
    if (relaxed.status == SolveStatus::kUnbounded ||
        relaxed.status == SolveStatus::kIterationLimit) {
      worst_failure = relaxed.status;
      continue;
    }
    if (relaxed.status != SolveStatus::kOptimal) continue;
    if (have_best && sign * relaxed.objective <=
                         sign * best.objective + options.int_tolerance)
      continue;  // bound: cannot beat incumbent

    // Find the most fractional integer variable.
    VarId branch_var = -1;
    double branch_frac = options.int_tolerance;
    for (VarId v = 0; static_cast<std::size_t>(v) < model.num_vars(); ++v) {
      if (!model.var(v).integer) continue;
      const double x = relaxed.value(v);
      const double frac = std::abs(x - std::round(x));
      if (frac > branch_frac) {
        branch_frac = frac;
        branch_var = v;
      }
    }
    if (branch_var < 0) {
      // Integral: candidate incumbent.
      if (!have_best ||
          sign * relaxed.objective > sign * best.objective) {
        best = relaxed;
        // Snap near-integers exactly.
        for (VarId v = 0; static_cast<std::size_t>(v) < model.num_vars();
             ++v) {
          if (model.var(v).integer)
            best.values[static_cast<std::size_t>(v)] =
                std::round(best.values[static_cast<std::size_t>(v)]);
        }
        have_best = true;
      }
      continue;
    }

    const double x = relaxed.value(branch_var);
    Node down = node;
    down.bounds.push_back(
        Row{{Term{branch_var, 1.0}}, Rel::kLe, std::floor(x)});
    Node up = node;
    up.bounds.push_back(
        Row{{Term{branch_var, 1.0}}, Rel::kGe, std::ceil(x)});
    // DFS; push "up" last so the larger-count branch (usually the WCET
    // direction) is explored first.
    stack.push_back(std::move(down));
    stack.push_back(std::move(up));
  }

  if (!have_best) best.status = worst_failure;
  best.stats = stats;
  return best;
}

}  // namespace ucp::ilp
