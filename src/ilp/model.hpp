#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace ucp::ilp {

using VarId = std::int32_t;

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Relation of a linear constraint.
enum class Rel : std::uint8_t { kLe, kGe, kEq };

/// One linear term: coefficient * variable.
struct Term {
  VarId var;
  double coeff;
};

/// A linear (integer) program: variables with bounds, linear constraints,
/// and a linear objective. This is the substrate under the IPET WCET
/// formulation (Section 3.2/3.3 of the paper), but it is fully generic.
class Model {
 public:
  /// Adds a variable with bounds [lower, upper]. `integer` marks it for
  /// branch-and-bound; `solve_lp` ignores integrality.
  VarId add_var(std::string name, double lower = 0.0, double upper = kInfinity,
                bool integer = true);

  void add_constraint(std::vector<Term> terms, Rel rel, double rhs);
  /// Sets the objective; `maximize` defaults to true (IPET maximizes).
  void set_objective(std::vector<Term> terms, bool maximize = true);

  std::size_t num_vars() const { return vars_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }

  struct Var {
    std::string name;
    double lower;
    double upper;
    bool integer;
  };
  struct Constraint {
    std::vector<Term> terms;
    Rel rel;
    double rhs;
  };

  const Var& var(VarId id) const;
  const std::vector<Var>& vars() const { return vars_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  const std::vector<Term>& objective() const { return objective_; }
  bool maximize() const { return maximize_; }

  /// Human-readable LP-format dump for debugging.
  std::string to_string() const;

 private:
  std::vector<Var> vars_;
  std::vector<Constraint> constraints_;
  std::vector<Term> objective_;
  bool maximize_ = true;
};

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

std::string status_name(SolveStatus status);

/// Work counters of one solver invocation (and, summed, of a whole sweep):
/// where the pivots go, how often branch-and-bound actually branches, and
/// how many simplex runs the warm-start machinery saved from a cold phase 1.
struct SolveStats {
  std::uint64_t lp_solves = 0;      ///< simplex runs (root + B&B nodes)
  std::uint64_t pivots = 0;         ///< primal + dual pivots, all runs
  std::uint64_t bb_nodes = 0;       ///< branch-and-bound nodes expanded
  std::uint64_t warm_starts = 0;    ///< runs reinstated from a parent basis
  std::uint64_t phase1_skipped = 0; ///< runs that needed no fresh phase 1

  void add(const SolveStats& other) {
    lp_solves += other.lp_solves;
    pivots += other.pivots;
    bb_nodes += other.bb_nodes;
    warm_starts += other.warm_starts;
    phase1_skipped += other.phase1_skipped;
  }
};

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< indexed by VarId
  SolveStats stats;            ///< work spent producing this solution

  bool optimal() const { return status == SolveStatus::kOptimal; }
  double value(VarId id) const;
};

/// Options for the solvers.
struct SolveOptions {
  std::uint64_t max_pivots = 2'000'000;   ///< per simplex run
  std::uint64_t max_bb_nodes = 200'000;   ///< branch-and-bound node cap
  double int_tolerance = 1e-6;            ///< integrality threshold
  /// Warm-start branch-and-bound children from the parent's optimal basis
  /// via dual-simplex reinstatement instead of re-entering phase 1. Off is
  /// only useful for differential testing and the micro benches.
  bool warm_start = true;
};

/// Solves the LP relaxation with the sparse bounded-variable revised
/// simplex (Dantzig pricing, Bland fallback, deterministic smallest-index
/// tie-breaking).
Solution solve_lp(const Model& model, const SolveOptions& options = {});

/// Solves the integer program by LP-based branch-and-bound; variables not
/// marked integer stay continuous.
Solution solve_ilp(const Model& model, const SolveOptions& options = {});

/// The retained dense-tableau two-phase simplex, kept verbatim as the
/// differential-testing reference for the sparse kernel. Not on any
/// production path: no fault points, no warm starts.
Solution solve_lp_dense_reference(const Model& model,
                                  const SolveOptions& options = {});
Solution solve_ilp_dense_reference(const Model& model,
                                   const SolveOptions& options = {});

}  // namespace ucp::ilp
