#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace ucp::ilp {

using VarId = std::int32_t;

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Relation of a linear constraint.
enum class Rel : std::uint8_t { kLe, kGe, kEq };

/// One linear term: coefficient * variable.
struct Term {
  VarId var;
  double coeff;
};

/// A linear (integer) program: variables with bounds, linear constraints,
/// and a linear objective. This is the substrate under the IPET WCET
/// formulation (Section 3.2/3.3 of the paper), but it is fully generic.
class Model {
 public:
  /// Adds a variable with bounds [lower, upper]. `integer` marks it for
  /// branch-and-bound; `solve_lp` ignores integrality.
  VarId add_var(std::string name, double lower = 0.0, double upper = kInfinity,
                bool integer = true);

  void add_constraint(std::vector<Term> terms, Rel rel, double rhs);
  /// Sets the objective; `maximize` defaults to true (IPET maximizes).
  void set_objective(std::vector<Term> terms, bool maximize = true);

  std::size_t num_vars() const { return vars_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }

  struct Var {
    std::string name;
    double lower;
    double upper;
    bool integer;
  };
  struct Constraint {
    std::vector<Term> terms;
    Rel rel;
    double rhs;
  };

  const Var& var(VarId id) const;
  const std::vector<Var>& vars() const { return vars_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  const std::vector<Term>& objective() const { return objective_; }
  bool maximize() const { return maximize_; }

  /// Human-readable LP-format dump for debugging.
  std::string to_string() const;

 private:
  std::vector<Var> vars_;
  std::vector<Constraint> constraints_;
  std::vector<Term> objective_;
  bool maximize_ = true;
};

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

std::string status_name(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< indexed by VarId

  bool optimal() const { return status == SolveStatus::kOptimal; }
  double value(VarId id) const;
};

/// Options for the solvers.
struct SolveOptions {
  std::uint64_t max_pivots = 2'000'000;   ///< per simplex run
  std::uint64_t max_bb_nodes = 200'000;   ///< branch-and-bound node cap
  double int_tolerance = 1e-6;            ///< integrality threshold
};

/// Solves the LP relaxation with two-phase dense simplex (Bland's rule).
Solution solve_lp(const Model& model, const SolveOptions& options = {});

/// Solves the integer program by LP-based branch-and-bound; variables not
/// marked integer stay continuous.
Solution solve_ilp(const Model& model, const SolveOptions& options = {});

}  // namespace ucp::ilp
