#pragma once

// Sparse bounded-variable LP snapshot for the revised simplex in
// simplex.cpp. A SparseLp is built once from a Model — CSC constraint
// matrix in equality form (one slack per row), variable bounds kept
// implicit instead of inflated into rows — and then re-solved any number
// of times with different objective vectors. Construction runs phase 1
// once and freezes the resulting feasible basis as an immutable canonical
// snapshot; every solve clones that snapshot, so solves are independent
// of call order and thread count, and a const SparseLp is safe to share
// across threads. This is what makes the per-program IpetSystem cache
// deterministic: the answer for (objective) never depends on which config
// or stage asked first.

#include <cstdint>
#include <vector>

#include "ilp/model.hpp"

namespace ucp::ilp {

namespace detail {
struct SimplexWorker;
}

class SparseLp {
 public:
  explicit SparseLp(const Model& model);

  std::size_t num_structural() const { return n_; }
  std::size_t num_rows() const { return m_; }
  /// Pivots spent building the canonical feasible basis (one-time phase 1).
  /// Not included in per-solve SolveStats; callers that want end-to-end
  /// pivot accounting add this once per SparseLp.
  std::uint64_t construction_pivots() const { return construction_pivots_; }
  /// kOptimal when a feasible canonical basis exists; kInfeasible /
  /// kIterationLimit otherwise (every solve then reports that status).
  SolveStatus canonical_status() const { return canonical_status_; }

  /// Maximizes `obj` (dense, indexed by structural VarId, shorter vectors
  /// are zero-extended) over the LP relaxation, starting from the canonical
  /// basis — phase 1 is skipped entirely.
  Solution solve_lp_with(const std::vector<double>& obj,
                         const SolveOptions& options = {}) const;

  /// Maximizes `obj` with the model's integrality marks enforced by
  /// branch-and-bound. With SolveOptions::warm_start (default) children
  /// reinstate the parent's optimal basis via the dual simplex instead of
  /// re-entering phase 1.
  Solution solve_ilp_with(const std::vector<double>& obj,
                          const SolveOptions& options = {}) const;

 private:
  friend struct detail::SimplexWorker;

  // Nonbasic-at-lower / nonbasic-at-upper / basic.
  enum VStat : std::uint8_t { kAtLower = 0, kAtUpper = 1, kBasic = 2 };

  // Column space: [0, n_) structural variables, [n_, n_ + m_) row slacks.
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t total_ = 0;  ///< n_ + m_

  // CSC storage of the structural columns; slack columns are unit vectors
  // and never materialized.
  std::vector<std::int32_t> col_ptr_;  ///< size n_ + 1
  std::vector<std::int32_t> row_idx_;
  std::vector<double> val_;

  std::vector<double> lower_;        ///< size total_
  std::vector<double> upper_;        ///< size total_
  std::vector<std::uint8_t> integer_;  ///< size n_
  std::vector<double> b_;            ///< size m_

  // Canonical snapshot (immutable after construction).
  std::vector<double> x_;              ///< size total_
  std::vector<std::uint8_t> vstat_;    ///< size total_
  std::vector<std::int32_t> basis_;    ///< size m_
  std::vector<double> binv_;           ///< m_ x m_, row-major
  SolveStatus canonical_status_ = SolveStatus::kOptimal;
  std::uint64_t construction_pivots_ = 0;
};

}  // namespace ucp::ilp
