#include "ilp/model.hpp"

#include <sstream>

#include "support/check.hpp"

namespace ucp::ilp {

VarId Model::add_var(std::string name, double lower, double upper,
                     bool integer) {
  UCP_REQUIRE(lower <= upper, "variable bounds inverted");
  UCP_REQUIRE(lower >= 0.0,
              "this solver handles non-negative variables only (IPET counts)");
  vars_.push_back(Var{std::move(name), lower, upper, integer});
  return static_cast<VarId>(vars_.size() - 1);
}

void Model::add_constraint(std::vector<Term> terms, Rel rel, double rhs) {
  for (const Term& t : terms)
    UCP_REQUIRE(t.var >= 0 && static_cast<std::size_t>(t.var) < vars_.size(),
                "constraint references unknown variable");
  constraints_.push_back(Constraint{std::move(terms), rel, rhs});
}

void Model::set_objective(std::vector<Term> terms, bool maximize) {
  for (const Term& t : terms)
    UCP_REQUIRE(t.var >= 0 && static_cast<std::size_t>(t.var) < vars_.size(),
                "objective references unknown variable");
  objective_ = std::move(terms);
  maximize_ = maximize;
}

const Model::Var& Model::var(VarId id) const {
  UCP_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < vars_.size(),
              "variable id out of range");
  return vars_[static_cast<std::size_t>(id)];
}

std::string Model::to_string() const {
  std::ostringstream os;
  os << (maximize_ ? "maximize" : "minimize") << ":";
  for (const Term& t : objective_)
    os << " " << (t.coeff >= 0 ? "+" : "") << t.coeff << "*"
       << vars_[static_cast<std::size_t>(t.var)].name;
  os << "\nsubject to:\n";
  for (const Constraint& c : constraints_) {
    os << " ";
    for (const Term& t : c.terms)
      os << " " << (t.coeff >= 0 ? "+" : "") << t.coeff << "*"
         << vars_[static_cast<std::size_t>(t.var)].name;
    switch (c.rel) {
      case Rel::kLe:
        os << " <= ";
        break;
      case Rel::kGe:
        os << " >= ";
        break;
      case Rel::kEq:
        os << " = ";
        break;
    }
    os << c.rhs << "\n";
  }
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    os << "  " << vars_[i].lower << " <= " << vars_[i].name;
    if (vars_[i].upper != kInfinity) os << " <= " << vars_[i].upper;
    if (vars_[i].integer) os << "  (int)";
    os << "\n";
  }
  return os.str();
}

std::string status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
  }
  UCP_CHECK_MSG(false, "unknown status");
}

double Solution::value(VarId id) const {
  UCP_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < values.size(),
              "variable id out of range in solution");
  return values[static_cast<std::size_t>(id)];
}

}  // namespace ucp::ilp
