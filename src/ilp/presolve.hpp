#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ilp/model.hpp"

namespace ucp::ilp {

/// Work accounting of one presolve run (surfaces as the
/// ilp.presolve.removed_{rows,cols} obs counters).
struct PresolveStats {
  std::size_t removed_rows = 0;   ///< constraints eliminated
  std::size_t removed_cols = 0;   ///< vars eliminated (fixed/aliased/substituted)
  std::size_t fixed_vars = 0;     ///< variables pinned to a constant
  std::size_t aliased_vars = 0;   ///< variables merged via x == y chains
  std::size_t empty_rows = 0;     ///< consistent 0 == 0 / 0 <= rhs rows
  std::size_t singleton_rows = 0; ///< rows reduced to one variable
  std::size_t forcing_rows = 0;   ///< rows whose activity bound pins all vars
  std::size_t substituted_vars = 0;  ///< implied-free vars eliminated by a row
  std::size_t passes = 0;         ///< fixpoint sweeps over the row set
};

/// Objective-independent exact presolve for the bounded-variable models the
/// IPET encoding produces (DESIGN.md §14). Reductions, iterated to a
/// fixpoint in deterministic index order:
///
///  - fixed-variable substitution: bounds with lower == upper (the IPET
///    source variable's [1,1], plus everything fixing cascades onto) move
///    into the right-hand sides;
///  - empty-row elimination: rows whose variables are all fixed are checked
///    for consistency and dropped;
///  - singleton rows: `a*x == r` fixes x; `a*x <= r` tightens a bound (and
///    fixes when the bounds close);
///  - forcing rows: when a row's minimum (for <=, ==) or maximum (for ==)
///    activity over the variable bounds equals the right-hand side, every
///    participating variable is pinned at the achieving bound — this is
///    what zeroes the back-edge variables of bound-2 loops via their
///    factor-0 anti-circulation rows;
///  - redundant rows: `<=` rows whose maximum activity cannot exceed the
///    right-hand side are dropped;
///  - doubleton aliases: `x - y == 0` contracts x and y into one column
///    (union-find, smallest index canonical, bounds intersected, integrality
///    OR-ed) — flow conservation over straight-line CFG chains collapses to
///    one variable per chain, the reduction that keeps the dense
///    basis-inverse of the sparse simplex small at thousands of blocks;
///  - implied-free substitution: an equality row whose variable x has a
///    coefficient of sign opposite to every other coefficient (and to the
///    right-hand side) defines x as a *nonnegative* combination of the other
///    variables, so x's `[0, inf)` bounds are implied and x can be
///    eliminated by Gaussian substitution without re-adding a bound row.
///    Flow-conservation rows of branch nodes (one in-arc, several out-arcs)
///    and join nodes (several in, one out) all qualify, which is where the
///    bulk of the IPET equality rows — and with them the sparse simplex's
///    phase-1 construction pivots — go. Integrality is preserved by only
///    substituting integer x through unimodular (|coeff| == 1, integral row)
///    definitions over integer variables; fill-in is bounded by per-row term
///    and occurrence caps.
///
/// Every reduction is exact (no relaxation, no rounding), so the reduced
/// program has the same optimal objective value as the original for EVERY
/// objective, and any optimal reduced solution expands to an optimal
/// original one. Integrality is preserved: aliases only merge, fixes abort
/// the whole presolve if they would pin an integer variable to a fractional
/// value. Any detected infeasibility also aborts (callers then solve the
/// original model, which reports the infeasibility through the usual path).
class Presolve {
 public:
  /// Reduces the constraint system of `model` (the objective is mapped per
  /// solve via map_objective). Returns disengaged if nothing was removed or
  /// the reduction had to abort — callers then use the original model.
  static std::optional<Presolve> reduce(const Model& model);

  /// The reduced model (constraints + bounds; objective left empty).
  const Model& reduced() const { return reduced_; }
  const PresolveStats& stats() const { return stats_; }

  /// Maps a dense original-space objective (indexed by original VarId) onto
  /// the reduced columns. `constant` receives the fixed variables'
  /// contribution, to be added to the reduced solve's objective value.
  std::vector<double> map_objective(const std::vector<double>& objective,
                                    double& constant) const;

  /// Expands a reduced-space solution vector back to original variable
  /// space: fixed variables take their pinned value, aliased variables
  /// their representative's value, substituted variables replay their
  /// defining rows in reverse elimination order.
  std::vector<double> expand_values(
      const std::vector<double>& reduced_values) const;

 private:
  Presolve() = default;

  /// One implied-free elimination: var == (rhs - Σ terms) / coeff, with the
  /// definition's variables canonicalized to their elimination-time roots.
  /// Recorded in elimination order; a definition only ever references
  /// variables that were still alive when it was made, i.e. variables that
  /// are either surviving, fixed, aliased, or substituted *later* — so
  /// expand_values resolves them by replaying the list in reverse.
  struct Substitution {
    std::int32_t var = -1;
    double coeff = 0.0;
    double rhs = 0.0;
    std::vector<Term> terms;
  };

  Model reduced_;
  PresolveStats stats_;
  std::size_t orig_vars_ = 0;
  std::vector<std::int32_t> col_of_;    ///< orig var -> reduced col (-1 = gone)
  std::vector<std::uint8_t> is_fixed_;  ///< orig var (via root) pinned?
  std::vector<double> fixed_value_;     ///< pinned value where is_fixed_
  std::vector<std::int32_t> subst_of_;  ///< orig var -> subst_ index (-1 = no)
  std::vector<Substitution> subst_;     ///< in elimination order
};

}  // namespace ucp::ilp
