#include "ilp/presolve.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace ucp::ilp {

namespace {

constexpr double kEps = 1e-9;
constexpr double kCoeffEps = 1e-11;
constexpr double kIntTol = 1e-6;
constexpr std::size_t kMaxPasses = 64;
// Fill-in caps for implied-free substitution: a definition with more terms,
// or a variable occurring in more other rows, is left alone (each expansion
// splices the definition into every remaining occurrence).
constexpr std::size_t kMaxSubstTerms = 8;
constexpr std::size_t kMaxSubstOccurrences = 8;
// Cascaded substitution can compound coefficients; magnitudes beyond this
// abort the presolve (callers solve the original model) rather than risk
// the activity arithmetic's fixed tolerances.
constexpr double kMaxCoeff = 1e9;

bool integral(double v) { return std::abs(v - std::round(v)) <= kIntTol; }

struct WorkRow {
  std::vector<Term> terms;  ///< canonical: root vars, merged, nonzero coeffs
  Rel rel = Rel::kLe;       ///< kLe or kEq (kGe is normalized away)
  double rhs = 0.0;
  bool alive = true;
};

}  // namespace

std::optional<Presolve> Presolve::reduce(const Model& model) {
  const std::size_t n = model.num_vars();
  std::vector<double> lo(n), up(n);
  std::vector<std::uint8_t> integer(n);
  for (std::size_t v = 0; v < n; ++v) {
    const Model::Var& var = model.var(static_cast<VarId>(v));
    lo[v] = var.lower;
    up[v] = var.upper;
    integer[v] = var.integer ? 1 : 0;
  }

  // Union-find over variables; the smallest member index is the root, so
  // reduction order (and therefore the reduced model) is deterministic.
  std::vector<std::int32_t> parent(n);
  for (std::size_t v = 0; v < n; ++v) parent[v] = static_cast<std::int32_t>(v);
  const auto find = [&](std::int32_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];  // path halving
      v = parent[v];
    }
    return v;
  };

  std::vector<std::uint8_t> fixed(n, 0);
  std::vector<double> fx(n, 0.0);

  bool infeasible = false;   // abort: caller solves the original model
  bool nonintegral = false;  // abort: a fix would violate integrality
  bool changed = false;

  // Pins root `r` to `value` (bound- and integrality-checked).
  const auto fix_root = [&](std::int32_t r, double value) {
    if (fixed[r]) {
      if (std::abs(fx[r] - value) > kEps) infeasible = true;
      return;
    }
    if (value < lo[r] - kEps || value > up[r] + kEps) {
      infeasible = true;
      return;
    }
    if (integer[r] && std::abs(value - std::round(value)) > kIntTol) {
      nonintegral = true;
      return;
    }
    fixed[r] = 1;
    fx[r] = integer[r] ? std::round(value) : value;
    lo[r] = up[r] = fx[r];
    changed = true;
  };

  // Merges the classes of x and y under x == y.
  const auto alias = [&](std::int32_t x, std::int32_t y) {
    std::int32_t rx = find(x), ry = find(y);
    if (rx == ry) return;
    if (rx > ry) std::swap(rx, ry);  // smallest index stays canonical
    parent[ry] = rx;
    lo[rx] = std::max(lo[rx], lo[ry]);
    up[rx] = std::min(up[rx], up[ry]);
    integer[rx] = integer[rx] | integer[ry];
    if (lo[rx] > up[rx] + kEps) infeasible = true;
    if (fixed[ry]) fix_root(rx, fx[ry]);
    if (fixed[rx] && !fixed[ry]) {
      // Bounds of the absorbed class must admit the pinned value.
      if (fx[rx] < lo[rx] - kEps || fx[rx] > up[rx] + kEps) infeasible = true;
      lo[rx] = up[rx] = fx[rx];
    }
    changed = true;
  };

  // Load rows, normalizing kGe to kLe by negation so the activity logic
  // handles two relations only.
  std::vector<WorkRow> rows(model.num_constraints());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Model::Constraint& c = model.constraints()[i];
    rows[i].terms = c.terms;
    rows[i].rhs = c.rhs;
    rows[i].rel = c.rel;
    if (c.rel == Rel::kGe) {
      rows[i].rel = Rel::kLe;
      rows[i].rhs = -rows[i].rhs;
      for (Term& t : rows[i].terms) t.coeff = -t.coeff;
    }
  }

  // Implied-free substitution records: subst_index[r] >= 0 marks root r as
  // eliminated by substitutions[subst_index[r]].
  std::vector<std::int32_t> subst_index(n, -1);
  std::vector<Presolve::Substitution> substitutions;
  bool blowup = false;  // coefficient magnitude escaped kMaxCoeff

  // Rewrites `row` against the current fix/alias/substitution state: fixed
  // variables fold into the rhs, aliases merge onto roots, substituted
  // variables splice in their definitions (iteratively — a definition may
  // itself reference later-substituted variables), zero coefficients drop.
  std::vector<Term> scratch;
  std::vector<Term> pending;
  const auto canonicalize = [&](WorkRow& row) {
    scratch.clear();
    pending.assign(row.terms.begin(), row.terms.end());
    while (!pending.empty()) {
      const Term t = pending.back();
      pending.pop_back();
      const std::int32_t r = find(t.var);
      if (fixed[r]) {
        row.rhs -= t.coeff * fx[r];
      } else if (subst_index[r] >= 0) {
        // c*x with x == (s.rhs - Σ a_j x_j) / s.coeff.
        const Presolve::Substitution& s = substitutions[subst_index[r]];
        const double scale = t.coeff / s.coeff;
        row.rhs -= scale * s.rhs;
        for (const Term& d : s.terms) {
          const double coeff = -scale * d.coeff;
          if (std::abs(coeff) > kMaxCoeff) blowup = true;
          pending.push_back(Term{d.var, coeff});
        }
      } else {
        scratch.push_back(Term{r, t.coeff});
      }
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const Term& a, const Term& b) { return a.var < b.var; });
    row.terms.clear();
    for (const Term& t : scratch) {
      if (!row.terms.empty() && row.terms.back().var == t.var) {
        row.terms.back().coeff += t.coeff;
      } else {
        row.terms.push_back(t);
      }
    }
    row.terms.erase(std::remove_if(row.terms.begin(), row.terms.end(),
                                   [](const Term& t) {
                                     return std::abs(t.coeff) <= kCoeffEps;
                                   }),
                    row.terms.end());
  };

  PresolveStats stats;
  std::vector<std::uint32_t> occ(n, 0);
  bool again = true;
  while (again && !infeasible && !nonintegral && !blowup &&
         stats.passes < kMaxPasses) {
    again = false;
    ++stats.passes;
    // Occurrence census for the substitution fill-in cap. Mid-pass
    // reductions leave it stale, which only skips borderline candidates
    // until the next pass — never a correctness issue.
    std::fill(occ.begin(), occ.end(), 0);
    for (WorkRow& row : rows) {
      if (!row.alive) continue;
      canonicalize(row);
      for (const Term& t : row.terms) ++occ[t.var];
    }
    for (WorkRow& row : rows) {
      if (!row.alive) continue;
      changed = false;
      canonicalize(row);

      if (row.terms.empty()) {
        const bool consistent = row.rel == Rel::kEq
                                    ? std::abs(row.rhs) <= kEps
                                    : row.rhs >= -kEps;
        if (!consistent) {
          infeasible = true;
          break;
        }
        row.alive = false;
        ++stats.empty_rows;
        again = true;
        continue;
      }

      if (row.terms.size() == 1) {
        const Term t = row.terms.front();
        const std::int32_t r = t.var;  // canonical root, unfixed
        const double bound = row.rhs / t.coeff;
        if (row.rel == Rel::kEq) {
          fix_root(r, bound);
        } else if (t.coeff > 0) {
          if (bound < up[r] - kEps) {
            up[r] = bound;
            changed = true;
          }
        } else {
          if (bound > lo[r] + kEps) {
            lo[r] = bound;
            changed = true;
          }
        }
        if (lo[r] > up[r] + kEps) {
          infeasible = true;
          break;
        }
        if (!fixed[r] && up[r] - lo[r] <= kEps) fix_root(r, (lo[r] + up[r]) / 2);
        row.alive = false;
        ++stats.singleton_rows;
        if (changed) again = true;
        continue;
      }

      if (row.rel == Rel::kEq && row.terms.size() == 2 &&
          std::abs(row.rhs) <= kEps &&
          std::abs(row.terms[0].coeff + row.terms[1].coeff) <= kCoeffEps) {
        // a*x - a*y == 0  =>  x == y: contract the two columns.
        alias(row.terms[0].var, row.terms[1].var);
        row.alive = false;
        ++stats.aliased_vars;
        again = true;
        continue;
      }

      if (row.rel == Rel::kEq && row.terms.size() >= 2 &&
          row.terms.size() <= kMaxSubstTerms + 1) {
        // Implied-free substitution: find an x whose bounds the row itself
        // implies, eliminate it by Gaussian substitution (the row dies with
        // it, and no bound row comes back). Smallest eligible variable
        // index wins, for determinism.
        std::int32_t best = -1;
        double best_coeff = 0.0;
        for (const Term& t : row.terms) {
          const std::int32_t r = t.var;
          if (occ[r] > kMaxSubstOccurrences + 1) continue;  // occ counts this row
          const bool is_free = std::isinf(lo[r]) && std::isinf(up[r]);
          bool ok = is_free;
          if (!ok && std::abs(lo[r]) <= kEps && std::isinf(up[r])) {
            // x == (rhs - Σ a_j x_j) / a_x must be provably nonnegative:
            // rhs/a_x >= 0 and every -a_j/a_x >= 0 over x_j >= 0.
            ok = row.rhs / t.coeff >= -kEps;
            for (const Term& o : row.terms) {
              if (!ok) break;
              if (o.var == r) continue;
              if (-o.coeff / t.coeff < -kEps || lo[o.var] < -kEps) ok = false;
            }
          }
          if (!ok) continue;
          if (integer[r]) {
            // Integer x must stay integral for every integral assignment of
            // the definition: unimodular pivot coefficient, integral row,
            // integer variables only.
            if (std::abs(std::abs(t.coeff) - 1.0) > kIntTol ||
                !integral(row.rhs))
              continue;
            bool ints = true;
            for (const Term& o : row.terms) {
              if (o.var == r) continue;
              if (!integer[o.var] || !integral(o.coeff)) {
                ints = false;
                break;
              }
            }
            if (!ints) continue;
          }
          if (best < 0 || r < best) {
            best = r;
            best_coeff = t.coeff;
          }
        }
        if (best >= 0) {
          Presolve::Substitution s;
          s.var = best;
          s.coeff = best_coeff;
          s.rhs = row.rhs;
          for (const Term& t : row.terms)
            if (t.var != best) s.terms.push_back(t);
          subst_index[best] = static_cast<std::int32_t>(substitutions.size());
          substitutions.push_back(std::move(s));
          row.alive = false;
          ++stats.substituted_vars;
          again = true;
          continue;
        }
      }

      // Activity bounds over the variable ranges (infinity-aware).
      double min_act = 0.0, max_act = 0.0;
      bool min_finite = true, max_finite = true;
      for (const Term& t : row.terms) {
        const double vlo = lo[t.var], vup = up[t.var];
        const double at_min = t.coeff > 0 ? vlo : vup;
        const double at_max = t.coeff > 0 ? vup : vlo;
        if (std::isinf(at_min)) {
          min_finite = false;
        } else {
          min_act += t.coeff * at_min;
        }
        if (std::isinf(at_max)) {
          max_finite = false;
        } else {
          max_act += t.coeff * at_max;
        }
      }

      if (min_finite && min_act > row.rhs + kEps) {
        infeasible = true;  // even the loosest assignment violates the row
        break;
      }
      if (row.rel == Rel::kEq && max_finite && max_act < row.rhs - kEps) {
        infeasible = true;
        break;
      }

      if (min_finite && min_act >= row.rhs - kEps) {
        // Forcing: the row is only satisfiable with every variable at its
        // activity-minimizing bound. (For kLe this needs min_act == rhs,
        // which the infeasibility check above guarantees here.)
        for (const Term& t : row.terms)
          fix_root(t.var, t.coeff > 0 ? lo[t.var] : up[t.var]);
        row.alive = false;
        ++stats.forcing_rows;
        again = true;
        continue;
      }
      if (row.rel == Rel::kEq && max_finite && max_act <= row.rhs + kEps) {
        for (const Term& t : row.terms)
          fix_root(t.var, t.coeff > 0 ? up[t.var] : lo[t.var]);
        row.alive = false;
        ++stats.forcing_rows;
        again = true;
        continue;
      }
      if (row.rel == Rel::kLe && max_finite && max_act <= row.rhs + kEps) {
        // Redundant: satisfied by every assignment within bounds.
        row.alive = false;
        ++stats.empty_rows;
        again = true;
        continue;
      }

      if (changed) again = true;  // a singleton tightened a shared bound
    }
  }

  if (infeasible || nonintegral || blowup) return std::nullopt;

  // Assemble the reduced model and the expansion maps.
  Presolve p;
  p.orig_vars_ = n;
  p.col_of_.assign(n, -1);
  p.is_fixed_.assign(n, 0);
  p.fixed_value_.assign(n, 0.0);
  p.subst_of_.assign(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    const std::int32_t r = find(static_cast<std::int32_t>(v));
    if (fixed[r]) {
      p.is_fixed_[v] = 1;
      p.fixed_value_[v] = fx[r];
      continue;
    }
    if (subst_index[r] >= 0) {
      p.subst_of_[v] = subst_index[r];
      continue;
    }
    if (p.col_of_[r] < 0) {
      const Model::Var& var = model.var(r);
      p.col_of_[r] = p.reduced_.add_var(var.name, lo[r], up[r],
                                        integer[r] != 0);
    }
    p.col_of_[v] = p.col_of_[r];
  }
  std::size_t alive_rows = 0;
  for (WorkRow& row : rows) {
    if (!row.alive) continue;
    // The pass-cap exit can leave a row referencing a variable substituted
    // in the final (uncompleted) round; one more canonicalize settles it.
    canonicalize(row);
    if (blowup) return std::nullopt;
    if (row.terms.empty()) {
      const bool consistent = row.rel == Rel::kEq ? std::abs(row.rhs) <= kEps
                                                  : row.rhs >= -kEps;
      if (!consistent) return std::nullopt;
      continue;
    }
    ++alive_rows;
    std::vector<Term> terms;
    terms.reserve(row.terms.size());
    for (const Term& t : row.terms)
      terms.push_back(Term{p.col_of_[t.var], t.coeff});
    p.reduced_.add_constraint(std::move(terms), row.rel, row.rhs);
  }
  p.subst_ = std::move(substitutions);

  stats.removed_rows = model.num_constraints() - alive_rows;
  stats.removed_cols = n - p.reduced_.num_vars();
  for (std::size_t v = 0; v < n; ++v)
    if (fixed[find(static_cast<std::int32_t>(v))]) ++stats.fixed_vars;
  p.stats_ = stats;
  if (stats.removed_rows == 0 && stats.removed_cols == 0) return std::nullopt;

  if (obs::enabled()) {
    static obs::Counter& c_runs = obs::registry().counter("ilp.presolve.runs");
    static obs::Counter& c_rows =
        obs::registry().counter("ilp.presolve.removed_rows");
    static obs::Counter& c_cols =
        obs::registry().counter("ilp.presolve.removed_cols");
    c_runs.increment();
    c_rows.add(stats.removed_rows);
    c_cols.add(stats.removed_cols);
  }
  return p;
}

std::vector<double> Presolve::map_objective(
    const std::vector<double>& objective, double& constant) const {
  UCP_REQUIRE(objective.size() <= orig_vars_,
              "objective longer than the presolved model's variable space");
  std::vector<double> out(reduced_.num_vars(), 0.0);
  constant = 0.0;
  // Substituted variables forward their coefficient through their defining
  // row (which may reference further-substituted variables — hence the
  // worklist): c*x == (c/a_x)*rhs - Σ (c*a_j/a_x)*x_j.
  std::vector<Term> pending;
  for (std::size_t v = 0; v < objective.size(); ++v)
    if (objective[v] != 0.0)
      pending.push_back(Term{static_cast<VarId>(v), objective[v]});
  while (!pending.empty()) {
    const Term t = pending.back();
    pending.pop_back();
    if (is_fixed_[t.var]) {
      constant += t.coeff * fixed_value_[t.var];
    } else if (subst_of_[t.var] >= 0) {
      const Substitution& s = subst_[subst_of_[t.var]];
      const double scale = t.coeff / s.coeff;
      constant += scale * s.rhs;
      for (const Term& d : s.terms)
        pending.push_back(Term{d.var, -scale * d.coeff});
    } else {
      out[static_cast<std::size_t>(col_of_[t.var])] += t.coeff;
    }
  }
  return out;
}

std::vector<double> Presolve::expand_values(
    const std::vector<double>& reduced_values) const {
  UCP_REQUIRE(reduced_values.size() >= reduced_.num_vars(),
              "reduced solution vector too short");
  // Resolve substituted variables in reverse elimination order: a
  // definition only references variables alive when it was made — i.e.
  // survivors, fixed variables, or variables substituted LATER — so by the
  // time it replays, everything it needs is already resolved.
  std::vector<double> subst_val(subst_.size(), 0.0);
  const auto value_of = [&](std::int32_t v) {
    if (is_fixed_[v]) return fixed_value_[v];
    if (subst_of_[v] >= 0) return subst_val[static_cast<std::size_t>(subst_of_[v])];
    return reduced_values[static_cast<std::size_t>(col_of_[v])];
  };
  for (std::size_t i = subst_.size(); i-- > 0;) {
    const Substitution& s = subst_[i];
    double acc = s.rhs;
    for (const Term& t : s.terms) acc -= t.coeff * value_of(t.var);
    subst_val[i] = acc / s.coeff;
  }
  std::vector<double> out(orig_vars_, 0.0);
  for (std::size_t v = 0; v < orig_vars_; ++v)
    out[v] = value_of(static_cast<std::int32_t>(v));
  return out;
}

}  // namespace ucp::ilp
