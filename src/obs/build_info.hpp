#pragma once

// Build metadata, stamped once at configure/compile time and carried by
// every metrics snapshot, every BENCH_*.json and every flight-recorder
// dump. Two runs are only comparable when their build stamps match — the
// stamp is what lets a latency regression be blamed on a flag change (or a
// sanitizer preset) instead of the code under test.

#include <cstdint>
#include <string>

namespace ucp::obs {

/// Configure/compile-time facts about this binary. Every field is a plain
/// string so the stamp can be embedded verbatim in any JSON artifact.
struct BuildInfo {
  std::string git_sha;    ///< `git rev-parse --short` at configure time
  std::string compiler;   ///< compiler id + version (e.g. "GNU 13.2.0")
  std::string flags;      ///< CMAKE_CXX_FLAGS + build-type flags
  std::string build_type; ///< CMAKE_BUILD_TYPE
  std::string sanitizer;  ///< UCP_SANITIZE preset: OFF / ADDRESS / THREAD
  /// std::thread::hardware_concurrency() of the *running* host — the one
  /// runtime field, because thread-scaling figures are meaningless without
  /// it.
  unsigned hardware_concurrency = 0;
};

/// The process-wide stamp (hardware_concurrency resolved on first call).
const BuildInfo& build_info();

/// Deterministic single-line JSON object of `build_info()`, key order
/// fixed: git_sha, compiler, flags, build_type, sanitizer,
/// hardware_concurrency.
const std::string& build_info_json();

}  // namespace ucp::obs
