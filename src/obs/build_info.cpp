#include "obs/build_info.hpp"

#include <thread>

// The stamp macros are injected per-source-file by src/obs/CMakeLists.txt;
// the fallbacks keep non-CMake builds (and tooling that compiles this file
// standalone) compiling with an honest "unknown".
#ifndef UCP_GIT_SHA
#define UCP_GIT_SHA "unknown"
#endif
#ifndef UCP_CXX_FLAGS
#define UCP_CXX_FLAGS ""
#endif
#ifndef UCP_BUILD_TYPE
#define UCP_BUILD_TYPE "unknown"
#endif
#ifndef UCP_SANITIZE_PRESET
#define UCP_SANITIZE_PRESET "OFF"
#endif

namespace ucp::obs {

namespace {

std::string compiler_string() {
#if defined(__clang__)
  return std::string("Clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("GNU ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch; break;
    }
  }
  out += '"';
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_sha = UCP_GIT_SHA;
    b.compiler = compiler_string();
    b.flags = UCP_CXX_FLAGS;
    b.build_type = UCP_BUILD_TYPE;
    b.sanitizer = UCP_SANITIZE_PRESET;
    b.hardware_concurrency = std::thread::hardware_concurrency();
    return b;
  }();
  return info;
}

const std::string& build_info_json() {
  static const std::string json = [] {
    const BuildInfo& b = build_info();
    std::string out = "{\"git_sha\":";
    append_json_string(out, b.git_sha);
    out += ",\"compiler\":";
    append_json_string(out, b.compiler);
    out += ",\"flags\":";
    append_json_string(out, b.flags);
    out += ",\"build_type\":";
    append_json_string(out, b.build_type);
    out += ",\"sanitizer\":";
    append_json_string(out, b.sanitizer);
    out += ",\"hardware_concurrency\":";
    out += std::to_string(b.hardware_concurrency);
    out += '}';
    return out;
  }();
  return json;
}

}  // namespace ucp::obs
