#pragma once

// Hierarchical RAII tracing — the timing half of ucp::obs.
//
// A Span brackets one operation; spans nest through a thread-local stack,
// so every closed span knows its duration *and* how much of it was spent in
// child spans (exclusive time = duration - children). Closed spans land in
// per-thread buffers that `drain_trace()` collects into one deterministic,
// (start, tid)-sorted event list for the sinks (Chrome trace JSON, profile
// table).
//
// Cost discipline: `Span` construction when tracing is disabled is one
// relaxed atomic load and a branch — no clock read, no TLS touch. Span
// names must be string literals (or otherwise outlive the trace): events
// store the pointer, not a copy. Naming follows `layer.component.op`; the
// segment before the first '.' becomes the Chrome `cat` field.

#include <cstdint>
#include <vector>

namespace ucp::obs {

/// Tracing switch, independent of the metrics switch (`obs::enabled()`):
/// metrics-only runs skip clock reads entirely. Relaxed load.
bool trace_enabled();
void set_trace_enabled(bool on);

/// One closed span. Times are nanoseconds since the process trace epoch
/// (first clock use), from std::chrono::steady_clock.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t excl_ns = 0;  ///< dur_ns minus time in child spans
  std::uint32_t tid = 0;      ///< dense per-process thread index, from 0
};

/// RAII span. Arms itself on construction iff tracing is enabled at that
/// moment, and closes (recording one TraceEvent) on destruction iff it
/// armed — so toggling tracing mid-span can lose that one span but never
/// unbalances the thread's stack.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

/// Moves every thread's closed spans out of the per-thread buffers into one
/// list sorted by (start_ns, tid). Safe to call at any time from any
/// thread; spans still open stay with their threads.
std::vector<TraceEvent> drain_trace();

/// Discards all buffered spans (open spans on other threads still close
/// into their buffers afterwards). Tests use this between runs.
void reset_trace();

/// Number of spans currently open on the calling thread — 0 when balanced.
std::size_t open_span_depth();

/// Nanoseconds since the trace epoch, for callers that correlate their own
/// timestamps with trace events.
std::uint64_t trace_now_ns();

}  // namespace ucp::obs
