#pragma once

// Hierarchical RAII tracing — the timing half of ucp::obs.
//
// A Span brackets one operation; spans nest through a thread-local stack,
// so every closed span knows its duration *and* how much of it was spent in
// child spans (exclusive time = duration - children). Closed spans land in
// per-thread buffers that `drain_trace()` collects into one deterministic,
// (start, tid)-sorted event list for the sinks (Chrome trace JSON, profile
// table).
//
// Cost discipline: `Span` construction when tracing is disabled is one
// relaxed atomic load and a branch — no clock read, no TLS touch. Span
// names must be string literals (or otherwise outlive the trace): events
// store the pointer, not a copy. Naming follows `layer.component.op`; the
// segment before the first '.' becomes the Chrome `cat` field.

#include <cstdint>
#include <vector>

namespace ucp::obs {

/// Tracing switch, independent of the metrics switch (`obs::enabled()`):
/// metrics-only runs skip clock reads entirely. Relaxed load.
bool trace_enabled();
void set_trace_enabled(bool on);

/// One closed span. Times are nanoseconds since the process trace epoch
/// (first clock use), from std::chrono::steady_clock.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t excl_ns = 0;  ///< dur_ns minus time in child spans
  std::uint64_t ctx = 0;      ///< trace context at open (0 = uncorrelated)
  std::uint32_t tid = 0;      ///< dense per-process thread index, from 0
};

// --- trace context (request correlation) -----------------------------------
// A thread-local correlation id. While set, every span the thread opens
// (and every flight record it files) carries it — so all the work one ucpd
// request triggers (analysis, ILP, optimizer, audit) is attributable to
// that request without threading an id through every call signature. The
// pipeline runs a request on one worker thread, which is exactly what makes
// this sufficient.
void set_trace_context(std::uint64_t ctx);
void clear_trace_context();
std::uint64_t trace_context();

/// RAII context scope for one request/task.
class TraceContextScope {
 public:
  explicit TraceContextScope(std::uint64_t ctx) : prev_(trace_context()) {
    set_trace_context(ctx);
  }
  ~TraceContextScope() { set_trace_context(prev_); }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// RAII span. Arms itself on construction iff tracing (or the flight
/// recorder) is enabled at that moment, and closes on destruction iff it
/// armed — recording a TraceEvent when tracing armed it and a flight
/// record when the recorder armed it — so toggling either switch mid-span
/// can lose that one span but never unbalances the thread's stack.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool trace_armed_ = false;
  bool flight_armed_ = false;
};

/// Moves every thread's closed spans out of the per-thread buffers into one
/// list sorted by (start_ns, tid). Safe to call at any time from any
/// thread; spans still open stay with their threads.
std::vector<TraceEvent> drain_trace();

/// Moves only the spans carrying context `ctx` out of the buffers — how the
/// daemon extracts (and bounds the memory of) one request's trace while
/// other requests keep accumulating theirs. Sorted like drain_trace().
std::vector<TraceEvent> drain_trace_context(std::uint64_t ctx);

/// Non-destructive copy of every buffered span, sorted like drain_trace().
/// The admin plane's PROFILE verb uses this to render a live top-spans
/// table without stealing the spans from a --trace session.
std::vector<TraceEvent> snapshot_trace();

/// Discards all buffered spans (open spans on other threads still close
/// into their buffers afterwards). Tests use this between runs.
void reset_trace();

/// Number of spans currently open on the calling thread — 0 when balanced.
std::size_t open_span_depth();

/// Nanoseconds since the trace epoch, for callers that correlate their own
/// timestamps with trace events.
std::uint64_t trace_now_ns();

/// The calling thread's dense trace thread index — the `tid` its spans (and
/// flight records) carry. Assigned on first use, stable for the thread's
/// lifetime.
std::uint32_t this_thread_trace_tid();

}  // namespace ucp::obs
