#pragma once

// Always-on crash flight recorder.
//
// A fixed-size per-thread ring buffer of recent span/log/note records.
// Unlike the trace buffers (unbounded until drained, enabled only for
// explicit profiling runs), the flight rings are bounded by construction
// and meant to run for the whole life of a daemon: recording is an
// allocation-free copy into a preallocated slot, and the only cost of a
// quiet ring is the memory it pins (~kDefaultCapacity * sizeof(FlightRecord)
// per thread).
//
// Dump triggers (ucpd): SIGQUIT, a watchdog fire, an audit violation, or an
// admin-plane FLIGHT request. The dump is a merge of every thread's ring,
// ordered by the global sequence number — the last N things the process did,
// per thread, survive any failure mode that leaves the dumper runnable.
// kill -9 leaves nothing runnable; for that the request journal (serve/
// request_journal) carries the durable story, and the flight recorder
// covers every softer ending.
//
// Record payloads are fixed-size char arrays (truncating copies), so a
// record never allocates and the ring never touches the heap after
// construction — a dump can run inside a fault path without compounding it.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace ucp::obs {

/// One flight-recorder record. POD; strings are truncating copies.
struct FlightRecord {
  static constexpr std::size_t kNameBytes = 48;
  static constexpr std::size_t kDetailBytes = 96;

  std::uint64_t seq = 0;    ///< global emission order across threads
  std::uint64_t ts_ns = 0;  ///< nanoseconds since the trace epoch
  std::uint64_t ctx = 0;    ///< trace context (request correlation), 0=none
  std::uint64_t dur_ns = 0; ///< span records only
  std::uint32_t tid = 0;    ///< dense thread index (same space as traces)
  char kind = 'N';          ///< 'S' span, 'L' log line, 'N' note
  char name[kNameBytes] = {};
  char detail[kDetailBytes] = {};
};

/// Recorder switch, independent of metrics/tracing: a daemon flies with the
/// recorder on and everything else off. Relaxed load.
bool flight_enabled();
void set_flight_enabled(bool on);

/// Per-thread ring capacity for rings created *after* the call (existing
/// rings keep their size). Clamped to [16, 65536]; default 256.
void set_flight_capacity(std::size_t records);
std::size_t flight_capacity();

/// Records an explicit event ('N') on the calling thread's ring. No-op when
/// the recorder is off.
void flight_note(const char* name, std::string_view detail = {});

/// Records a closed span ('S'). Called by obs::Span; public so subsystems
/// with their own timing (e.g. the admin plane) can file span-shaped
/// records without a Span object.
void flight_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, std::uint64_t ctx);

/// Internal hook for obs::log: records an emitted log line ('L').
void flight_log(const char* component, const char* event,
                std::string_view detail);

/// Non-destructive merged copy of every thread's ring, ascending seq. Safe
/// to call from any thread at any time (rings are locked one at a time).
std::vector<FlightRecord> flight_snapshot();

/// JSON-lines dump (docs/schemas/flight_record.schema.json): a header line
/// carrying `reason`, the build stamp and the record count, then one line
/// per record in seq order.
std::string flight_dump_json(const std::string& reason);

/// Writes `flight_dump_json(reason)` to `path` through the
/// `obs.flight_dump` fault point. kInternal on I/O failure — callers must
/// degrade to a warning, never fail the operation that triggered the dump.
Status write_flight_file(const std::string& path, const std::string& reason);

/// Clears every ring (tests).
void reset_flight();

}  // namespace ucp::obs
