#include "obs/flight.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/build_info.hpp"
#include "obs/trace.hpp"
#include "support/fault_injection.hpp"

namespace ucp::obs {

namespace {

std::atomic<bool> g_flight_enabled{false};
std::atomic<std::size_t> g_capacity{256};
std::atomic<std::uint64_t> g_seq{0};

void copy_truncated(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

/// One thread's ring. Owned jointly by the thread (TLS shared_ptr) and the
/// global list, exactly like the trace buffers, so a thread may exit while
/// a dump still reads its recent records. The mutex is uncontended except
/// while a dump copies the ring.
struct Ring {
  std::mutex mutex;
  std::vector<FlightRecord> slots;  // preallocated, fixed size
  std::size_t next = 0;             // next slot to overwrite
  std::size_t filled = 0;           // min(records ever, slots.size())
  std::uint32_t tid = 0;

  explicit Ring(std::size_t capacity) {
    slots.resize(capacity);
  }

  void push(const FlightRecord& record) {
    std::lock_guard<std::mutex> lock(mutex);
    slots[next] = record;
    next = (next + 1) % slots.size();
    filled = std::min(filled + 1, slots.size());
  }
};

struct RingList {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;
};

RingList& ring_list() {
  static RingList* list = new RingList();  // leaked: outlives TLS teardown
  return *list;
}

Ring& local_ring() {
  thread_local std::shared_ptr<Ring> ring = [] {
    auto r = std::make_shared<Ring>(
        g_capacity.load(std::memory_order_relaxed));
    r->tid = this_thread_trace_tid();
    RingList& list = ring_list();
    std::lock_guard<std::mutex> lock(list.mutex);
    list.rings.push_back(r);
    return r;
  }();
  return *ring;
}

void record(char kind, const char* name, std::string_view detail,
            std::uint64_t start_ns, std::uint64_t dur_ns, std::uint64_t ctx) {
  FlightRecord r;
  r.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  r.ts_ns = start_ns;
  r.ctx = ctx;
  r.dur_ns = dur_ns;
  r.kind = kind;
  copy_truncated(r.name, FlightRecord::kNameBytes, name);
  copy_truncated(r.detail, FlightRecord::kDetailBytes, detail);
  Ring& ring = local_ring();
  r.tid = ring.tid;
  ring.push(r);
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
        break;
    }
  }
  out += '"';
}

}  // namespace

bool flight_enabled() {
  return g_flight_enabled.load(std::memory_order_relaxed);
}

void set_flight_enabled(bool on) {
  g_flight_enabled.store(on, std::memory_order_relaxed);
}

void set_flight_capacity(std::size_t records) {
  g_capacity.store(std::clamp<std::size_t>(records, 16, 65536),
                   std::memory_order_relaxed);
}

std::size_t flight_capacity() {
  return g_capacity.load(std::memory_order_relaxed);
}

void flight_note(const char* name, std::string_view detail) {
  if (!flight_enabled()) return;
  record('N', name, detail, trace_now_ns(), 0, trace_context());
}

void flight_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, std::uint64_t ctx) {
  if (!flight_enabled()) return;
  record('S', name, {}, start_ns, dur_ns, ctx);
}

void flight_log(const char* component, const char* event,
                std::string_view detail) {
  if (!flight_enabled()) return;
  const std::string name = std::string(component) + "." + event;
  record('L', name.c_str(), detail, trace_now_ns(), 0, trace_context());
}

std::vector<FlightRecord> flight_snapshot() {
  std::vector<FlightRecord> all;
  RingList& list = ring_list();
  std::lock_guard<std::mutex> list_lock(list.mutex);
  for (const auto& ring : list.rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    // Oldest-first within the ring: the slot at `next` is the oldest once
    // the ring has wrapped.
    const std::size_t n = ring->filled;
    const std::size_t cap = ring->slots.size();
    const std::size_t oldest = ring->filled < cap ? 0 : ring->next;
    for (std::size_t i = 0; i < n; ++i)
      all.push_back(ring->slots[(oldest + i) % cap]);
  }
  std::sort(all.begin(), all.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq < b.seq;
            });
  return all;
}

std::string flight_dump_json(const std::string& reason) {
  const std::vector<FlightRecord> records = flight_snapshot();
  std::string out = "{\"kind\":\"header\",\"reason\":";
  append_json_string(out, reason);
  out += ",\"records\":";
  out += std::to_string(records.size());
  out += ",\"capacity_per_thread\":";
  out += std::to_string(flight_capacity());
  out += ",\"build\":";
  out += build_info_json();
  out += "}\n";
  for (const FlightRecord& r : records) {
    out += "{\"kind\":\"";
    out += r.kind == 'S' ? "span" : r.kind == 'L' ? "log" : "note";
    out += "\",\"seq\":";
    out += std::to_string(r.seq);
    out += ",\"ts_ns\":";
    out += std::to_string(r.ts_ns);
    out += ",\"tid\":";
    out += std::to_string(r.tid);
    out += ",\"name\":";
    append_json_string(out, r.name);
    if (r.detail[0] != '\0') {
      out += ",\"detail\":";
      append_json_string(out, r.detail);
    }
    if (r.kind == 'S') {
      out += ",\"dur_ns\":";
      out += std::to_string(r.dur_ns);
    }
    if (r.ctx != 0) {
      char buf[20];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(r.ctx));
      out += ",\"ctx\":\"";
      out += buf;
      out += '"';
    }
    out += "}\n";
  }
  return out;
}

Status write_flight_file(const std::string& path, const std::string& reason) {
  const std::string body = flight_dump_json(reason);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr || UCP_FAULT_POINT("obs.flight_dump")) {
    if (f != nullptr) std::fclose(f);
    return Status(ErrorCode::kInternal,
                  "cannot write flight-recorder dump " + path);
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != body.size() || !flushed || !closed)
    return Status(ErrorCode::kInternal,
                  "short write to flight-recorder dump " + path);
  return Status::Ok();
}

void reset_flight() {
  RingList& list = ring_list();
  std::lock_guard<std::mutex> list_lock(list.mutex);
  for (const auto& ring : list.rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    ring->next = 0;
    ring->filled = 0;
  }
}

}  // namespace ucp::obs
