#pragma once

// Typed metrics in a central registry — the counting half of ucp::obs.
//
// Design contract (DESIGN.md §11, §13):
//  - disabled-by-default: every instrumentation site guards on
//    `obs::enabled()`, a single relaxed atomic load, so the disabled cost
//    is one load + branch (measured ≤1% on the perf smoke);
//  - hot loops never touch registry atomics per iteration — kernels
//    aggregate locally and `add()` once per analysis/solve/run;
//  - instruments have stable addresses for the lifetime of the process, so
//    call sites cache `static Counter& c = registry().counter(...)`;
//  - counters and histograms are internally sharded across cache-line-
//    padded per-thread cells, so a 16-worker sweep never serializes on one
//    contended atomic; reads merge the shards (addition commutes, so the
//    merged value is deterministic for a deterministic set of adds);
//  - snapshots are deterministic: entries come back sorted by name, shard
//    merge included, and no wall-clock value is ever stored in a counter or
//    gauge (durations go into *_ms / *_ns histograms only, whose bucket
//    *counts* are machine-dependent and therefore never fingerprinted).
//
// Naming convention: `layer.component.op`, e.g. `analysis.cache.joins`,
// `ilp.solve.pivots`, `exp.task.attempts`.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ucp::obs {

/// Master instrumentation switch. Relaxed load: instrumentation sites are
/// counters, not synchronization points — a site that observes a stale
/// `false` for a few loads after enabling merely under-counts the boundary.
bool enabled();
void set_enabled(bool on);

namespace internal {

/// Shard fan-out of the per-thread instrument cells. Power of two; large
/// enough that a 16-worker sweep rarely maps two hot threads to one cell,
/// small enough that merging on read stays trivial.
inline constexpr unsigned kShards = 16;

/// Stable per-thread shard slot, assigned round-robin on first use.
unsigned this_thread_shard();

/// One cache line per cell so two threads incrementing different shards of
/// the same instrument never false-share.
struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace internal

/// Monotonic event count, sharded per thread. `add` touches only the
/// calling thread's cell; `value` merges the shards. The merge is a sum of
/// relaxed loads: exact once writers are quiescent (how every snapshot is
/// taken), momentarily approximate while they race — fine for a counter.
class Counter {
 public:
  void add(std::uint64_t n) {
    shards_[internal::this_thread_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const internal::ShardCell& cell : shards_)
      total += cell.value.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (internal::ShardCell& cell : shards_)
      cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  internal::ShardCell shards_[internal::kShards];
};

/// Point-in-time level; `set_max` keeps the high-water mark (peak worklist
/// length, deepest B&B frontier).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void set_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Exponential (power-of-two) histogram: bucket 0 holds the value 0, bucket
/// i >= 1 holds [2^(i-1), 2^i - 1]. 65 buckets cover the full uint64 range
/// with no configuration and a deterministic bucket→range mapping that the
/// schema (docs/schemas/metrics_snapshot.schema.json) can state once.
/// Like Counter, records land in a per-thread shard (the whole bucket array
/// is sharded, so two worker threads recording never share a line) and
/// reads merge the shards by summation.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  static int bucket_index(std::uint64_t v);
  /// [lo, hi] covered by bucket `index`.
  static std::pair<std::uint64_t, std::uint64_t> bucket_range(int index);

  void record(std::uint64_t v) {
    Shard& shard = shards_[internal::this_thread_shard()];
    shard.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_)
      total += shard.count.load(std::memory_order_relaxed);
    return total;
  }
  std::uint64_t sum() const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_)
      total += shard.sum.load(std::memory_order_relaxed);
    return total;
  }
  std::uint64_t bucket(int index) const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_)
      total += shard.buckets[index].load(std::memory_order_relaxed);
    return total;
  }

  /// Estimated q-quantile (q in [0,1]) from the bucket counts: the target
  /// rank is located in the cumulative bucket walk, then linearly
  /// interpolated inside that bucket's [lo, hi] value range. The estimate
  /// is exact for values that fill a bucket uniformly and off by at most
  /// the bucket width otherwise — with power-of-two buckets that bounds
  /// the relative error by 2x, which is the accepted trade for recording
  /// in O(1) with no stored samples. Returns 0 for an empty histogram.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  Shard shards_[internal::kShards];
};

/// Deterministic point-in-time copy of the registry, sorted by name.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// (bucket index, count) for the non-empty buckets, ascending index.
    std::vector<std::pair<int, std::uint64_t>> buckets;
    /// Same estimator as Histogram::quantile, over the snapshot's counts.
    double quantile(double q) const;
  };
  std::vector<HistogramValue> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Estimated q-quantile over (bucket index, count) pairs (ascending index)
/// totalling `count` records — the shared core of Histogram::quantile and
/// Snapshot::HistogramValue::quantile.
double histogram_quantile(
    const std::vector<std::pair<int, std::uint64_t>>& buckets,
    std::uint64_t count, double q);

/// Single-line JSON of a snapshot: {"build":{...},"counters":{...},
/// "gauges":{...},"histograms":{name:{"count":..,"sum":..,
/// "buckets":[[i,n],...]}}}. One code path feeds --metrics files, the
/// BENCH_*.json "metrics" objects and the journal annotation. The build
/// stamp (obs::build_info) rides in every snapshot so no metrics artifact
/// is ever ambiguous about the binary that produced it.
std::string snapshot_json(const Snapshot& snapshot);

/// Central instrument registry. Lookup takes a mutex — call sites cache the
/// returned reference (function-local static) so steady-state cost is the
/// instrument's own relaxed atomic.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  Snapshot snapshot() const;
  /// Zeroes every instrument's value. Registrations (and addresses) persist:
  /// cached `static Counter&` references at call sites stay valid.
  void reset_values();

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

inline Registry& registry() { return Registry::instance(); }

}  // namespace ucp::obs
