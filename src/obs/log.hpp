#pragma once

// Structured leveled logging — the operator-facing half of ucp::obs.
//
// One line per event, in one of two renderings of the same record:
//   text:  "[component] event detail k=v k=v"    (human, the default)
//   json:  {"ts_ms":..,"level":"info","component":"serve","event":"..",
//           "k":v,...}                            (machines; ucpd default)
//
// Contract (docs/schemas/log_line.schema.json):
//  - deterministic field ordering: the four envelope keys first (ts_ms,
//    level, component, event), then caller fields in *insertion order* —
//    two runs of the same code emit keys in the same order, so log diffs
//    and downstream parsers never chase map-ordering noise;
//  - rate limiting per (component, event): at most `rate_limit` lines per
//    window; the first line after a suppressed stretch carries a
//    `suppressed` field, so silence is never silent data loss (same
//    discipline as obs::ProgressReporter notices);
//  - every emitted line is also recorded in the flight recorder (kind
//    'L'), so a crash dump carries the most recent log tail even when the
//    log stream itself was lost;
//  - sink failures are swallowed: logging is an observer and may never
//    take the serving path down with it.

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ucp::obs {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

const char* log_level_name(LogLevel level);

/// Ordered field list for one log line. Values are pre-rendered to JSON
/// tokens at append time, so emission is a deterministic concatenation.
class LogFields {
 public:
  LogFields& str(std::string_view key, std::string_view value);
  LogFields& num(std::string_view key, std::int64_t value);
  LogFields& num(std::string_view key, std::uint64_t value);
  LogFields& real(std::string_view key, double value);
  LogFields& boolean(std::string_view key, bool value);

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  /// key -> rendered JSON token ("\"quoted\"", "42", "1.5", "true").
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct LogOptions {
  LogLevel min_level = LogLevel::kInfo;
  bool json = false;        ///< false: human-readable text rendering
  std::FILE* stream = nullptr;  ///< nullptr = stderr (ignored with a path)
  std::string file_path;    ///< non-empty: append lines to this file
  /// Max lines per (component, event) per window; 0 = unlimited.
  std::uint32_t rate_limit = 0;
  std::uint32_t rate_window_ms = 1000;
};

/// Installs the sink. Safe to call at any time; a failing `file_path` open
/// degrades to the stream/stderr with a warning line.
void configure_logging(const LogOptions& options);

/// The active configuration (for tests and for flag plumbing).
LogOptions logging_options();

/// True iff a log(level, ...) call would emit — callers building expensive
/// field sets guard on this.
bool log_enabled(LogLevel level);

/// Emits one structured line. `component` and `event` must be string
/// literals or otherwise outlive the call; `detail` is a free-form human
/// message (rendered as the `detail` field in json mode).
void log(LogLevel level, const char* component, const char* event,
         std::string_view detail = {}, const LogFields& fields = {});

/// Lines emitted / suppressed-by-rate-limit since process start (or the
/// last reset_log_stats()). Suppression accounting is per process, like
/// the registry counters.
std::uint64_t log_lines_emitted();
std::uint64_t log_lines_suppressed();
void reset_log_stats();

}  // namespace ucp::obs
