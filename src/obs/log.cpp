#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>

#include "obs/flight.hpp"

namespace ucp::obs {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
        break;
    }
  }
  out += '"';
}

/// The sink. One mutex serializes configuration and emission: log volume is
/// rate-limited by design, so the lock is never the bottleneck, and a torn
/// line is worse than a brief wait.
struct Sink {
  std::mutex mutex;
  LogOptions options;
  std::FILE* file = nullptr;  ///< owned, from options.file_path

  struct Channel {
    std::int64_t window_start_ms = -1;
    std::uint32_t in_window = 0;
    std::uint64_t suppressed = 0;
  };
  std::map<std::string, Channel> channels;

  ~Sink() = delete;  // leaked singleton
};

Sink& sink() {
  static Sink* s = new Sink();  // leaked: outlives static teardown
  return *s;
}

std::atomic<std::uint8_t> g_min_level{
    static_cast<std::uint8_t>(LogLevel::kInfo)};
std::atomic<std::uint64_t> g_emitted{0};
std::atomic<std::uint64_t> g_suppressed{0};

std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string render_json(std::int64_t ts_ms, LogLevel level,
                        const char* component, const char* event,
                        std::string_view detail, const LogFields& fields,
                        std::uint64_t suppressed) {
  std::string out = "{\"ts_ms\":";
  out += std::to_string(ts_ms);
  out += ",\"level\":\"";
  out += log_level_name(level);
  out += "\",\"component\":";
  append_json_string(out, component);
  out += ",\"event\":";
  append_json_string(out, event);
  if (!detail.empty()) {
    out += ",\"detail\":";
    append_json_string(out, detail);
  }
  if (suppressed != 0) {
    out += ",\"suppressed\":";
    out += std::to_string(suppressed);
  }
  for (const auto& [key, token] : fields.entries()) {
    out += ',';
    append_json_string(out, key);
    out += ':';
    out += token;
  }
  out += "}\n";
  return out;
}

std::string render_text(LogLevel level, const char* component,
                        const char* event, std::string_view detail,
                        const LogFields& fields, std::uint64_t suppressed) {
  std::string out = "[";
  out += component;
  out += "] ";
  if (level == LogLevel::kWarn) out += "warning: ";
  if (level == LogLevel::kError) out += "error: ";
  out += event;
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  for (const auto& [key, token] : fields.entries()) {
    out += ' ';
    out += key;
    out += '=';
    // Tokens are JSON-rendered; strings keep their quotes in text mode too,
    // so a value containing spaces stays one field.
    out += token;
  }
  if (suppressed != 0) {
    out += " (+";
    out += std::to_string(suppressed);
    out += " suppressed)";
  }
  out += '\n';
  return out;
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

LogFields& LogFields::str(std::string_view key, std::string_view value) {
  std::string token;
  append_json_string(token, value);
  entries_.emplace_back(std::string(key), std::move(token));
  return *this;
}

LogFields& LogFields::num(std::string_view key, std::int64_t value) {
  entries_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

LogFields& LogFields::num(std::string_view key, std::uint64_t value) {
  entries_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

LogFields& LogFields::real(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  entries_.emplace_back(std::string(key), buf);
  return *this;
}

LogFields& LogFields::boolean(std::string_view key, bool value) {
  entries_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

void configure_logging(const LogOptions& options) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.file != nullptr) {
    std::fclose(s.file);
    s.file = nullptr;
  }
  s.options = options;
  if (!options.file_path.empty()) {
    s.file = std::fopen(options.file_path.c_str(), "ab");
    if (s.file == nullptr) {
      std::fprintf(stderr,
                   "[obs] warning: cannot open log file %s; logging to "
                   "stderr\n",
                   options.file_path.c_str());
      s.options.file_path.clear();
    }
  }
  s.channels.clear();
  g_min_level.store(static_cast<std::uint8_t>(options.min_level),
                    std::memory_order_relaxed);
}

LogOptions logging_options() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.options;
}

bool log_enabled(LogLevel level) {
  return static_cast<std::uint8_t>(level) >=
         g_min_level.load(std::memory_order_relaxed);
}

void log(LogLevel level, const char* component, const char* event,
         std::string_view detail, const LogFields& fields) {
  if (!log_enabled(level)) return;

  Sink& s = sink();
  std::uint64_t suppressed_to_report = 0;
  std::string line;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.options.rate_limit > 0) {
      const std::int64_t now = wall_ms();
      Sink::Channel& ch =
          s.channels[std::string(component) + "\x1f" + event];
      if (ch.window_start_ms < 0 ||
          now - ch.window_start_ms >=
              static_cast<std::int64_t>(s.options.rate_window_ms)) {
        ch.window_start_ms = now;
        ch.in_window = 0;
      }
      if (ch.in_window >= s.options.rate_limit) {
        ++ch.suppressed;
        g_suppressed.fetch_add(1, std::memory_order_relaxed);
        // Suppressed lines still reach the flight recorder: the ring is
        // bounded anyway, and a crash dump wants exactly the spammy tail
        // the rate limiter kept off the operator's terminal.
        flight_log(component, event, detail);
        return;
      }
      ++ch.in_window;
      suppressed_to_report = ch.suppressed;
      ch.suppressed = 0;
    }
    line = s.options.json
               ? render_json(wall_ms(), level, component, event, detail,
                             fields, suppressed_to_report)
               : render_text(level, component, event, detail, fields,
                             suppressed_to_report);
    std::FILE* out = s.file != nullptr
                         ? s.file
                         : (s.options.stream != nullptr ? s.options.stream
                                                        : stderr);
    // A failing sink is swallowed: logging must never take the caller down.
    (void)std::fwrite(line.data(), 1, line.size(), out);
    (void)std::fflush(out);
  }
  g_emitted.fetch_add(1, std::memory_order_relaxed);
  flight_log(component, event, detail);
}

std::uint64_t log_lines_emitted() {
  return g_emitted.load(std::memory_order_relaxed);
}

std::uint64_t log_lines_suppressed() {
  return g_suppressed.load(std::memory_order_relaxed);
}

void reset_log_stats() {
  g_emitted.store(0, std::memory_order_relaxed);
  g_suppressed.store(0, std::memory_order_relaxed);
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.channels.clear();
}

}  // namespace ucp::obs
