#pragma once

// Pluggable output sinks for ucp::obs.
//
// Three consumers of the same instrumentation:
//  - Chrome `trace_event` JSON (complete 'X' events), loadable in Perfetto
//    or chrome://tracing;
//  - metrics snapshot JSON files (and the single-line form merged into
//    BENCH_sweep.json and appended to the journal as a comment);
//  - a human-readable end-of-run profile table, top spans by inclusive /
//    exclusive time.
//
// Every file write passes the `obs.sink_write` fault point and returns a
// Status. Sinks are observers: callers must degrade a sink failure to a
// warning — it may never fail a sweep row or perturb a result.

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/status.hpp"

namespace ucp::obs {

/// Serializes events as a Chrome trace: {"traceEvents":[...],
/// "displayTimeUnit":"ms"}. One complete event (`ph:"X"`) per span;
/// ts/dur in microseconds; `cat` is the `layer` segment of the span name;
/// exclusive time rides in args.excl_us.
std::string trace_json(const std::vector<TraceEvent>& events);

/// Writes `trace_json(events)` to `path` (via the obs.sink_write fault
/// point). kInternal on I/O failure.
Status write_trace_file(const std::string& path,
                        const std::vector<TraceEvent>& events);

/// Writes `snapshot_json(snapshot)` (+ trailing newline) to `path`.
Status write_metrics_file(const std::string& path, const Snapshot& snapshot);

/// Prometheus text exposition (version 0.0.4) of a snapshot, for the ucpd
/// admin plane's `STATS prom` verb. Names are mangled `a.b.c` ->
/// `ucp_a_b_c`; counters become `counter`, gauges `gauge`, and the
/// power-of-two histograms render as native Prometheus histograms with
/// cumulative `_bucket{le="..."}` series (le = each non-empty bucket's
/// upper value bound, plus "+Inf"), `_sum` and `_count`.
std::string prometheus_text(const Snapshot& snapshot);

/// Aggregates events by span name and renders the top `top_n` rows by
/// inclusive time: calls, inclusive/exclusive totals and means, share of
/// the busiest span. Empty string when there are no events.
std::string profile_table(const std::vector<TraceEvent>& events,
                          std::size_t top_n = 16);

}  // namespace ucp::obs
