#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "obs/flight.hpp"

namespace ucp::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

thread_local std::uint64_t g_trace_context = 0;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t trace_epoch() {
  static const std::uint64_t epoch = steady_ns();
  return epoch;
}

/// One open span on a thread's stack. The stack itself is touched only by
/// the owning thread; no lock needed.
struct Frame {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t child_ns;  ///< summed durations of already-closed children
};

/// Per-thread trace state. Owned jointly by the thread (TLS shared_ptr) and
/// the global buffer list, so a thread may exit while drain_trace() still
/// reads its closed spans. `events` is the only cross-thread field; its
/// mutex is uncontended except during a drain.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::vector<Frame> stack;  // thread-private
  std::uint32_t tid = 0;
};

struct BufferList {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

BufferList& buffer_list() {
  static BufferList* list = new BufferList();  // leaked: outlives TLS teardown
  return *list;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferList& list = buffer_list();
    std::lock_guard<std::mutex> lock(list.mutex);
    b->tid = list.next_tid++;
    list.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  if (on) trace_epoch();  // pin the epoch before the first span
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() {
  // Pin the epoch before sampling the clock: with unspecified evaluation
  // order, `steady_ns() - trace_epoch()` can initialize the epoch *after*
  // the minuend on the very first call and underflow.
  const std::uint64_t epoch = trace_epoch();
  return steady_ns() - epoch;
}

void set_trace_context(std::uint64_t ctx) { g_trace_context = ctx; }

void clear_trace_context() { g_trace_context = 0; }

std::uint64_t trace_context() { return g_trace_context; }

std::uint32_t this_thread_trace_tid() { return local_buffer().tid; }

Span::Span(const char* name) : name_(name) {
  trace_armed_ = trace_enabled();
  flight_armed_ = flight_enabled();
  if (!trace_armed_ && !flight_armed_) return;
  start_ns_ = trace_now_ns();
  local_buffer().stack.push_back(Frame{name_, start_ns_, 0});
}

Span::~Span() {
  if (!trace_armed_ && !flight_armed_) return;
  const std::uint64_t end_ns = trace_now_ns();
  ThreadBuffer& buf = local_buffer();
  // The matching frame is the top of this thread's stack by construction
  // (spans are scoped objects, so they unwind LIFO on one thread).
  const Frame frame = buf.stack.back();
  buf.stack.pop_back();
  const std::uint64_t dur = end_ns - frame.start_ns;
  if (!buf.stack.empty()) buf.stack.back().child_ns += dur;
  if (flight_armed_) flight_span(name_, frame.start_ns, dur, g_trace_context);
  if (!trace_armed_) return;
  TraceEvent ev;
  ev.name = name_;
  ev.start_ns = frame.start_ns;
  ev.dur_ns = dur;
  ev.excl_ns = dur >= frame.child_ns ? dur - frame.child_ns : 0;
  ev.ctx = g_trace_context;
  ev.tid = buf.tid;
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(ev);
}

namespace {

void sort_events(std::vector<TraceEvent>& all) {
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.dur_ns > b.dur_ns;  // parents before equal-start kids
            });
}

}  // namespace

std::vector<TraceEvent> drain_trace() {
  std::vector<TraceEvent> all;
  BufferList& list = buffer_list();
  std::lock_guard<std::mutex> list_lock(list.mutex);
  for (const auto& buf : list.buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
    buf->events.clear();
  }
  sort_events(all);
  return all;
}

std::vector<TraceEvent> drain_trace_context(std::uint64_t ctx) {
  std::vector<TraceEvent> matched;
  BufferList& list = buffer_list();
  std::lock_guard<std::mutex> list_lock(list.mutex);
  for (const auto& buf : list.buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    auto keep = buf->events.begin();
    for (TraceEvent& ev : buf->events) {
      if (ev.ctx == ctx)
        matched.push_back(ev);
      else
        *keep++ = ev;
    }
    buf->events.erase(keep, buf->events.end());
  }
  sort_events(matched);
  return matched;
}

std::vector<TraceEvent> snapshot_trace() {
  std::vector<TraceEvent> all;
  BufferList& list = buffer_list();
  std::lock_guard<std::mutex> list_lock(list.mutex);
  for (const auto& buf : list.buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  sort_events(all);
  return all;
}

void reset_trace() {
  BufferList& list = buffer_list();
  std::lock_guard<std::mutex> list_lock(list.mutex);
  for (const auto& buf : list.buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    buf->events.clear();
  }
}

std::size_t open_span_depth() { return local_buffer().stack.size(); }

}  // namespace ucp::obs
