#include "obs/sink.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "support/fault_injection.hpp"
#include "support/table.hpp"

namespace ucp::obs {

namespace {

/// "layer" from "layer.component.op" — the Chrome `cat` field.
std::string span_category(const char* name) {
  const char* dot = std::strchr(name, '.');
  return dot ? std::string(name, dot) : std::string(name);
}

void append_us(std::string& out, std::uint64_t ns) {
  // Microseconds with fixed 3-decimal fraction, no locale, no double
  // rounding: Chrome/Perfetto accept fractional `ts`/`dur`.
  out += std::to_string(ns / 1000);
  out += '.';
  const std::uint64_t frac = ns % 1000;
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + frac / 10 % 10);
  out += static_cast<char>('0' + frac % 10);
}

Status write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr || UCP_FAULT_POINT("obs.sink_write")) {
    if (f != nullptr) std::fclose(f);
    return Status(ErrorCode::kInternal, "cannot open sink file " + path);
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != body.size() || !flushed || !closed) {
    return Status(ErrorCode::kInternal, "short write to sink file " + path);
  }
  return Status::Ok();
}

}  // namespace

std::string trace_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += ev.name;  // span names are literals from our own taxonomy
    out += "\",\"cat\":\"";
    out += span_category(ev.name);
    out += "\",\"ph\":\"X\",\"ts\":";
    append_us(out, ev.start_ns);
    out += ",\"dur\":";
    append_us(out, ev.dur_ns);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    out += ",\"args\":{\"excl_us\":";
    append_us(out, ev.excl_ns);
    if (ev.ctx != 0) {
      // Request correlation: every span a ucpd request triggered carries
      // the request's context id, so Perfetto can filter one request out
      // of a loaded daemon's trace.
      char buf[20];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(ev.ctx));
      out += ",\"ctx\":\"";
      out += buf;
      out += '"';
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status write_trace_file(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  return write_text_file(path, trace_json(events));
}

Status write_metrics_file(const std::string& path, const Snapshot& snapshot) {
  return write_text_file(path, snapshot_json(snapshot) + "\n");
}

namespace {

/// `a.b.c` -> `ucp_a_b_c` (Prometheus metric names allow [a-zA-Z0-9_:]).
std::string prom_name(const std::string& name) {
  std::string out = "ucp_";
  for (const char c : name)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  return out;
}

}  // namespace

std::string prometheus_text(const Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const Snapshot::HistogramValue& h : snapshot.histograms) {
    const std::string n = prom_name(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [index, count] : h.buckets) {
      cumulative += count;
      out += n + "_bucket{le=\"" +
             std::to_string(Histogram::bucket_range(index).second) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + std::to_string(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string profile_table(const std::vector<TraceEvent>& events,
                          std::size_t top_n) {
  if (events.empty()) return {};

  struct Agg {
    std::uint64_t calls = 0;
    std::uint64_t incl_ns = 0;
    std::uint64_t excl_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& ev : events) {
    Agg& a = by_name[ev.name];
    a.calls += 1;
    a.incl_ns += ev.dur_ns;
    a.excl_ns += ev.excl_ns;
  }

  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.incl_ns != b.second.incl_ns)
      return a.second.incl_ns > b.second.incl_ns;
    return a.first < b.first;
  });
  if (rows.size() > top_n) rows.resize(top_n);

  const double top_incl_ms =
      rows.empty() ? 0.0 : static_cast<double>(rows.front().second.incl_ns) / 1e6;
  TextTable table({"span", "calls", "incl ms", "excl ms", "mean us", "% top"});
  for (const auto& [name, a] : rows) {
    const double incl_ms = static_cast<double>(a.incl_ns) / 1e6;
    const double excl_ms = static_cast<double>(a.excl_ns) / 1e6;
    const double mean_us =
        a.calls == 0 ? 0.0 : static_cast<double>(a.incl_ns) / 1e3 /
                                 static_cast<double>(a.calls);
    const double pct =
        top_incl_ms == 0.0 ? 0.0 : 100.0 * incl_ms / top_incl_ms;
    table.add_row({name, std::to_string(a.calls), format_double(incl_ms, 3),
                   format_double(excl_ms, 3), format_double(mean_us, 1),
                   format_double(pct, 1)});
  }
  std::ostringstream os;
  os << "-- profile: top spans by inclusive time --\n";
  table.print(os);
  return os.str();
}

}  // namespace ucp::obs
