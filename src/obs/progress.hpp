#pragma once

// Unified, rate-limited operator feedback for long runs.
//
// One ProgressReporter replaces the per-feature stderr printing that used to
// grow with each subsystem (sweep progress lines, retry-ladder notices,
// auditor notices, journal state): every channel shares one clock, one
// output stream and one rate-limiting discipline, so a 48-thread sweep can
// never flood the terminal no matter how many subsystems have news.
//
// ETA discipline: the estimate divides *remaining scheduled work* by
// *completed-work throughput*, both in the scheduler's weight units
// (instructions × cache sets), not in case counts. Under heaviest-first
// scheduling the early cases are the slowest ones, so a case-count ETA
// reads far too pessimistic at the start and far too optimistic at the end;
// weight throughput is scale-free against that ordering. Rows restored from
// a journal count as already-done work but are excluded from the
// throughput numerator — they were free.

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include <atomic>

namespace ucp::obs {

class ProgressReporter {
 public:
  struct Options {
    bool enabled = true;              ///< false = all channels silent
    std::uint64_t min_interval_ms = 1000;  ///< per channel, including progress
    std::FILE* out = nullptr;         ///< nullptr = stderr
  };

  ProgressReporter() : ProgressReporter(Options()) {}
  explicit ProgressReporter(const Options& options);

  /// Declares the work ahead. `resumed_*` is work already done before this
  /// run started (journal restores): counted as done, excluded from
  /// throughput.
  void begin(std::uint64_t total_cases, std::uint64_t total_weight,
             std::uint64_t resumed_cases, std::uint64_t resumed_weight);

  /// Thread-safe completion tick. Emits at most one progress line per
  /// interval regardless of thread count; the final case always reports.
  void case_done(std::uint64_t cases, std::uint64_t weight);

  /// Rate-limited named notice channel ("retry", "audit", "journal", ...).
  /// At most one line per channel per interval; the rest are counted, and
  /// `finish()` reports the suppressed totals so silence is never silent
  /// data loss.
  void notice(const char* channel, const std::string& message);

  /// Unconditional line (journal open note, cache decisions). Not
  /// rate-limited; still honours `enabled`.
  void announce(const std::string& message);

  /// Flushes the suppressed-notice accounting ("... and N more retry
  /// notices").
  void finish();

  std::uint64_t done_cases() const {
    return done_cases_.load(std::memory_order_relaxed);
  }

 private:
  std::int64_t now_ms() const;
  std::FILE* stream() const { return options_.out ? options_.out : stderr; }

  Options options_;
  std::uint64_t total_cases_ = 0;
  std::uint64_t total_weight_ = 0;
  std::uint64_t resumed_cases_ = 0;
  std::uint64_t resumed_weight_ = 0;
  std::atomic<std::uint64_t> done_cases_{0};
  std::atomic<std::uint64_t> done_weight_{0};
  std::atomic<std::int64_t> last_progress_ms_{-1000000};
  std::int64_t epoch_ms_ = 0;

  struct Channel {
    std::int64_t last_ms = -1000000;
    std::uint64_t suppressed = 0;
  };
  std::mutex channels_mutex_;
  std::map<std::string, Channel> channels_;
};

}  // namespace ucp::obs
