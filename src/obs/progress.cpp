#include "obs/progress.hpp"

#include <chrono>

namespace ucp::obs {

namespace {
std::int64_t steady_ms() {
  return static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ProgressReporter::ProgressReporter(const Options& options)
    : options_(options), epoch_ms_(steady_ms()) {}

std::int64_t ProgressReporter::now_ms() const { return steady_ms() - epoch_ms_; }

void ProgressReporter::begin(std::uint64_t total_cases,
                             std::uint64_t total_weight,
                             std::uint64_t resumed_cases,
                             std::uint64_t resumed_weight) {
  total_cases_ = total_cases;
  total_weight_ = total_weight;
  resumed_cases_ = resumed_cases;
  resumed_weight_ = resumed_weight;
  done_cases_.store(resumed_cases, std::memory_order_relaxed);
  done_weight_.store(resumed_weight, std::memory_order_relaxed);
  epoch_ms_ = steady_ms();
  last_progress_ms_.store(-1000000, std::memory_order_relaxed);
}

void ProgressReporter::case_done(std::uint64_t cases, std::uint64_t weight) {
  const std::uint64_t done =
      done_cases_.fetch_add(cases, std::memory_order_relaxed) + cases;
  const std::uint64_t done_weight =
      done_weight_.fetch_add(weight, std::memory_order_relaxed) + weight;
  if (!options_.enabled) return;

  const std::int64_t elapsed = now_ms();
  std::int64_t last = last_progress_ms_.load(std::memory_order_relaxed);
  // Rate limit: at most one line per interval no matter how many workers
  // finish tasks simultaneously; the final case always reports.
  if (done < total_cases_ &&
      elapsed - last < static_cast<std::int64_t>(options_.min_interval_ms))
    return;
  if (!last_progress_ms_.compare_exchange_strong(last, elapsed))
    return;  // another worker just printed

  const double secs = static_cast<double>(elapsed) / 1000.0;
  const double case_rate =
      secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
  // Weight-based ETA: remaining scheduled work over completed-work
  // throughput, with journal-restored weight excluded from the numerator.
  const std::uint64_t earned =
      done_weight > resumed_weight_ ? done_weight - resumed_weight_ : 0;
  const double weight_rate =
      secs > 0.0 ? static_cast<double>(earned) / secs : 0.0;
  const std::uint64_t remaining =
      total_weight_ > done_weight ? total_weight_ - done_weight : 0;
  const double eta =
      weight_rate > 0.0 ? static_cast<double>(remaining) / weight_rate : 0.0;
  const double work_pct =
      total_weight_ > 0 ? 100.0 * static_cast<double>(done_weight) /
                              static_cast<double>(total_weight_)
                        : 0.0;
  std::fprintf(stream(),
               "  [sweep] %llu/%llu use cases (%.1f cases/s, %.1f%% of "
               "work, ETA %.0fs)\n",
               static_cast<unsigned long long>(done),
               static_cast<unsigned long long>(total_cases_), case_rate,
               work_pct, eta);
}

void ProgressReporter::notice(const char* channel, const std::string& message) {
  if (!options_.enabled) return;
  const std::int64_t now = now_ms();
  {
    std::lock_guard<std::mutex> lock(channels_mutex_);
    Channel& ch = channels_[channel];
    if (now - ch.last_ms <
        static_cast<std::int64_t>(options_.min_interval_ms)) {
      ++ch.suppressed;
      return;
    }
    ch.last_ms = now;
  }
  std::fprintf(stream(), "  [sweep:%s] %s\n", channel, message.c_str());
}

void ProgressReporter::announce(const std::string& message) {
  if (!options_.enabled) return;
  std::fprintf(stream(), "  [sweep] %s\n", message.c_str());
}

void ProgressReporter::finish() {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(channels_mutex_);
  for (auto& [name, ch] : channels_) {
    if (ch.suppressed == 0) continue;
    std::fprintf(stream(), "  [sweep:%s] ... and %llu more %s notices\n",
                 name.c_str(), static_cast<unsigned long long>(ch.suppressed),
                 name.c_str());
    ch.suppressed = 0;
  }
}

}  // namespace ucp::obs
