#include "obs/metrics.hpp"

#include <bit>
#include <limits>

#include "obs/build_info.hpp"

namespace ucp::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

namespace internal {

unsigned this_thread_shard() {
  static std::atomic<unsigned> next{0};
  // Round-robin assignment on first use keeps any K ≤ kShards concurrently
  // hot threads on distinct cells; ids survive pool teardown/rebuild (a new
  // pool's threads simply continue the rotation).
  thread_local const unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

int Histogram::bucket_index(std::uint64_t v) {
  return v == 0 ? 0 : std::bit_width(v);
}

std::pair<std::uint64_t, std::uint64_t> Histogram::bucket_range(int index) {
  if (index <= 0) return {0, 0};
  const std::uint64_t lo = std::uint64_t{1} << (index - 1);
  const std::uint64_t hi = index >= 64 ? std::numeric_limits<std::uint64_t>::max()
                                       : (std::uint64_t{1} << index) - 1;
  return {lo, hi};
}

double histogram_quantile(
    const std::vector<std::pair<int, std::uint64_t>>& buckets,
    std::uint64_t count, double q) {
  if (count == 0 || buckets.empty()) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // 0-based target rank, interpolated: q=0 is the first record, q=1 the
  // last, matching the nearest-rank convention of the old bench-side sort.
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t below = 0;
  for (const auto& [index, n] : buckets) {
    if (n == 0) continue;
    const double lo_rank = static_cast<double>(below);
    const double hi_rank = static_cast<double>(below + n - 1);
    if (rank <= hi_rank) {
      const auto [lo, hi] = Histogram::bucket_range(index);
      if (n == 1 || hi == lo)
        return static_cast<double>(lo) +
               (static_cast<double>(hi) - static_cast<double>(lo)) / 2.0;
      // Spread the bucket's n records evenly over [lo, hi] and pick the
      // interpolated position of `rank` among them.
      const double frac = (rank - lo_rank) / static_cast<double>(n - 1);
      return static_cast<double>(lo) +
             frac * (static_cast<double>(hi) - static_cast<double>(lo));
    }
    below += n;
  }
  // Numerically unreachable (rank < count), but stay total.
  const auto [lo, hi] = Histogram::bucket_range(buckets.back().first);
  (void)lo;
  return static_cast<double>(hi);
}

double Histogram::quantile(double q) const {
  std::vector<std::pair<int, std::uint64_t>> filled;
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = bucket(i);
    if (n != 0) {
      filled.emplace_back(i, n);
      total += n;
    }
  }
  return histogram_quantile(filled, total, q);
}

double Snapshot::HistogramValue::quantile(double q) const {
  return histogram_quantile(buckets, count, q);
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: outlives static teardown
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramValue v;
    v.name = name;
    v.count = h->count();
    v.sum = h->sum();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n != 0) v.buckets.emplace_back(i, n);
    }
    s.histograms.push_back(std::move(v));
  }
  return s;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch; break;
    }
  }
  out += '"';
}

}  // namespace

std::string snapshot_json(const Snapshot& snapshot) {
  std::string out = "{\"build\":";
  out += build_info_json();
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, h.name);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& [index, n] : h.buckets) {
      if (!bfirst) out += ',';
      bfirst = false;
      out += '[';
      out += std::to_string(index);
      out += ',';
      out += std::to_string(n);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace ucp::obs
