#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/dominators.hpp"
#include "ir/program.hpp"

namespace ucp::analysis {

/// One level of loop context: which loop, and whether this is the peeled
/// FIRST execution of its header or the folded REST executions. This is the
/// VIVU transformation of [Martin/Alt/Wilhelm], Definition 6 / Supplement
/// S.3 of the paper: each loop is virtually unrolled once, so first-iteration
/// cache effects (cold misses) separate from steady-state behaviour.
struct ContextEntry {
  ir::BlockId header = ir::kInvalidBlock;
  bool rest = false;

  friend bool operator==(const ContextEntry&, const ContextEntry&) = default;
  friend auto operator<=>(const ContextEntry&, const ContextEntry&) = default;
};

/// Loop-nest context, outermost first. Always equals the loop-nest chain of
/// the node's basic block.
using Context = std::vector<ContextEntry>;

std::string context_to_string(const Context& ctx);

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// A basic block in a specific VIVU context.
struct CgNode {
  ir::BlockId block = ir::kInvalidBlock;
  Context ctx;
};

/// An expanded CFG edge. `back` marks REST->REST loop back edges — the only
/// cycles in the graph; dropping them yields the acyclic ACFG the optimizer
/// walks in reverse.
struct CgEdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  bool back = false;
};

/// One loop instance in a given surrounding context, with its FIRST and REST
/// header nodes. IPET adds `n(rest) <= (bound-1) * n(first)` per instance.
struct LoopInstance {
  ir::BlockId header = ir::kInvalidBlock;
  Context parent_ctx;                 ///< context outside this loop
  NodeId first_node = kInvalidNode;   ///< header in (.., FIRST)
  NodeId rest_node = kInvalidNode;    ///< header in (.., REST); may be absent
  std::uint32_t bound = 0;            ///< max header executions per entry
};

/// The VIVU-expanded control flow graph. Every node is (basic block,
/// context); instruction addresses are shared with the original program
/// (contexts are virtual copies, not real code duplication).
class ContextGraph {
 public:
  explicit ContextGraph(const ir::Program& program);

  const ir::Program& program() const { return *program_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  const CgNode& node(NodeId id) const;
  const std::vector<CgNode>& nodes() const { return nodes_; }
  NodeId entry_node() const { return entry_; }

  const std::vector<CgEdge>& edges() const { return edges_; }
  /// Edge indices into edges(), per node.
  const std::vector<std::uint32_t>& out_edges(NodeId id) const;
  const std::vector<std::uint32_t>& in_edges(NodeId id) const;

  const std::vector<LoopInstance>& loop_instances() const {
    return loop_instances_;
  }

  /// Topological order of nodes when back edges are ignored (the ACFG
  /// order). Sources first.
  const std::vector<NodeId>& topo_order() const { return topo_; }

  /// Position of a node in topo_order(). Intra-SCC iteration and the sparse
  /// fixpoint's priority worklists order nodes by this key.
  std::uint32_t topo_pos(NodeId id) const { return topo_pos_[id]; }

  /// Strongly connected components of the full graph (back edges included),
  /// computed once at construction. SCC ids are numbered in topological
  /// order of the condensation: every edge satisfies
  /// scc_of(from) <= scc_of(to), so the sparse fixpoint can finalize one
  /// SCC at a time and never revisit an earlier one.
  std::uint32_t scc_count() const { return scc_count_; }
  std::uint32_t scc_of(NodeId id) const { return scc_id_[id]; }
  /// Members of SCC `s`, in ACFG topological order:
  /// scc_order()[scc_begin()[s] .. scc_begin()[s+1]).
  const std::vector<NodeId>& scc_order() const { return scc_order_; }
  const std::vector<std::uint32_t>& scc_begin() const { return scc_begin_; }
  /// True iff SCC `s` is a single node without a self edge: one transfer
  /// suffices, no local fixpoint iteration.
  bool scc_trivial(std::uint32_t s) const { return scc_trivial_[s] != 0; }

  /// Nodes whose block ends in halt (ACFG sinks).
  const std::vector<NodeId>& exit_nodes() const { return exits_; }

  std::string to_string() const;

 private:
  NodeId intern(ir::BlockId block, const Context& ctx);
  void build();
  void compute_topo_order();
  void compute_sccs();

  const ir::Program* program_;
  std::vector<CgNode> nodes_;
  std::vector<CgEdge> edges_;
  std::vector<std::vector<std::uint32_t>> out_edges_;
  std::vector<std::vector<std::uint32_t>> in_edges_;
  std::map<std::pair<ir::BlockId, Context>, NodeId> index_;
  NodeId entry_ = kInvalidNode;
  std::vector<LoopInstance> loop_instances_;
  std::vector<NodeId> topo_;
  std::vector<std::uint32_t> topo_pos_;
  std::vector<NodeId> exits_;

  // Tarjan SCC decomposition, condensation-topologically numbered.
  std::uint32_t scc_count_ = 0;
  std::vector<std::uint32_t> scc_id_;
  std::vector<NodeId> scc_order_;
  std::vector<std::uint32_t> scc_begin_;
  std::vector<std::uint8_t> scc_trivial_;

  // Loop structure of the underlying program.
  std::vector<ir::NaturalLoop> loops_;
  std::map<ir::BlockId, std::size_t> loop_by_header_;
  /// Loop-nest chain (outer->inner headers) per basic block.
  std::vector<std::vector<ir::BlockId>> nest_chain_;
};

}  // namespace ucp::analysis
