#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/config.hpp"

namespace ucp::analysis {

using cache::MemBlockId;

/// Abstract LRU age of a block inside one cache set. In the must domain an
/// age is an *upper* bound (block guaranteed resident with age <= h); in the
/// may domain it is a *lower* bound (block possibly resident, earliest age h).
/// These are the abstract cache states of Ferdinand's analysis, reviewed in
/// Section 3.1 of the paper (Definitions 1-2).
struct AgedBlock {
  MemBlockId block;
  std::uint8_t age;

  friend bool operator==(const AgedBlock&, const AgedBlock&) = default;
};

/// One abstract cache set: blocks sorted by id, each with an abstract age in
/// [0, assoc). Blocks aged past assoc-1 are dropped (abstractly evicted).
class AbstractSet {
 public:
  explicit AbstractSet(std::uint8_t assoc) : assoc_(assoc) {}

  /// Age of `block`, or -1 if absent.
  int age_of(MemBlockId block) const;
  bool contains(MemBlockId block) const { return age_of(block) >= 0; }
  std::size_t size() const { return entries_.size(); }
  const std::vector<AgedBlock>& entries() const { return entries_; }
  std::uint8_t assoc() const { return assoc_; }

  /// Must-domain LRU update on access to `block` (Ferdinand's U-hat).
  void update_must(MemBlockId block);
  /// May-domain LRU update on access to `block`.
  void update_may(MemBlockId block);

  /// Must join: intersection, maximal age. The result is what is guaranteed
  /// cached no matter which path executed.
  static AbstractSet join_must(const AbstractSet& a, const AbstractSet& b);
  /// May join: union, minimal age. The result is what may be cached on some
  /// path.
  static AbstractSet join_may(const AbstractSet& a, const AbstractSet& b);

  friend bool operator==(const AbstractSet&, const AbstractSet&) = default;

  std::string to_string() const;

 private:
  void insert_at_zero_aging(MemBlockId block, int old_age, bool may_domain);

  std::uint8_t assoc_;
  std::vector<AgedBlock> entries_;  // sorted by block id
};

/// A whole abstract cache state: one AbstractSet per cache set. The paper's
/// c-hat : L -> P(S).
class AbstractCache {
 public:
  explicit AbstractCache(const cache::CacheConfig& config);

  const cache::CacheConfig& config() const { return config_; }
  AbstractSet& set_for_block(MemBlockId block);
  const AbstractSet& set_for_block(MemBlockId block) const;
  const AbstractSet& set_at(std::uint32_t index) const;

  void update_must(MemBlockId block) { set_for_block(block).update_must(block); }
  void update_may(MemBlockId block) { set_for_block(block).update_may(block); }
  bool must_contain(MemBlockId block) const {
    return set_for_block(block).contains(block);
  }
  bool may_contain(MemBlockId block) const {
    return set_for_block(block).contains(block);
  }

  static AbstractCache join_must(const AbstractCache& a,
                                 const AbstractCache& b);
  static AbstractCache join_may(const AbstractCache& a, const AbstractCache& b);

  friend bool operator==(const AbstractCache&, const AbstractCache&) = default;

  std::string to_string() const;

 private:
  cache::CacheConfig config_;
  std::vector<AbstractSet> sets_;
};

}  // namespace ucp::analysis
