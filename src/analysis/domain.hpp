#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "support/small_vector.hpp"

namespace ucp::analysis {

using cache::MemBlockId;

/// Abstract LRU age of a block inside one cache set. In the must domain an
/// age is an *upper* bound (block guaranteed resident with age <= h); in the
/// may domain it is a *lower* bound (block possibly resident, earliest age h).
/// These are the abstract cache states of Ferdinand's analysis, reviewed in
/// Section 3.1 of the paper (Definitions 1-2).
struct AgedBlock {
  MemBlockId block;
  std::uint8_t age;

  friend bool operator==(const AgedBlock&, const AgedBlock&) = default;
};

/// One abstract cache set: blocks sorted by id, each with an abstract age in
/// [0, assoc). Blocks aged past assoc-1 are dropped (abstractly evicted).
///
/// Entries live in a small inline buffer (the must domain holds at most
/// `assoc` blocks, the may domain rarely more), so updates, joins and state
/// copies on the fixpoint hot path perform no heap allocation.
class AbstractSet {
 public:
  /// Inline entry capacity; covers assoc <= 4 (the whole Table-2 grid) with
  /// join headroom before the heap fallback kicks in.
  static constexpr std::size_t kInlineEntries = 8;

  explicit AbstractSet(std::uint8_t assoc = 1) : assoc_(assoc) {}

  /// Age of `block`, or -1 if absent.
  int age_of(MemBlockId block) const;
  bool contains(MemBlockId block) const { return age_of(block) >= 0; }
  std::size_t size() const { return entries_.size(); }
  const SmallVector<AgedBlock, kInlineEntries>& entries() const {
    return entries_;
  }
  std::uint8_t assoc() const { return assoc_; }

  /// Must-domain LRU update on access to `block` (Ferdinand's U-hat).
  void update_must(MemBlockId block);
  /// May-domain LRU update on access to `block`.
  void update_may(MemBlockId block);

  /// Must join: intersection, maximal age. The result is what is guaranteed
  /// cached no matter which path executed.
  static AbstractSet join_must(const AbstractSet& a, const AbstractSet& b);
  /// May join: union, minimal age. The result is what may be cached on some
  /// path.
  static AbstractSet join_may(const AbstractSet& a, const AbstractSet& b);

  /// In-place accumulating joins for the fixpoint inner loop: *this becomes
  /// join(*this, other); returns true iff *this changed. Allocation-free.
  bool join_must_with(const AbstractSet& other);
  bool join_may_with(const AbstractSet& other);

  friend bool operator==(const AbstractSet&, const AbstractSet&) = default;

  std::string to_string() const;

 private:
  void insert_at_zero_aging(MemBlockId block, int old_age, bool may_domain);

  std::uint8_t assoc_;
  SmallVector<AgedBlock, kInlineEntries> entries_;  // sorted by block id
};

/// A whole abstract cache state: one AbstractSet per cache set. The paper's
/// c-hat : L -> P(S). Geometry (set count, associativity, set mapping) is
/// borrowed from a shared CacheConfig instead of copied per state.
///
/// The set vector lives behind a refcounted copy-on-write payload: copying a
/// state (worklist seeding, incremental-trial boundary snapshots, interning)
/// bumps a refcount instead of cloning age vectors, and every mutator
/// detaches first. Pointer equality of payloads is both a free equality
/// witness and a join fast path (`join(x, x) = x`), which is what makes the
/// hash-consing in the fixpoint driver pay off — identical states collapse
/// to one allocation and compare in O(1).
class AbstractCache {
 public:
  explicit AbstractCache(const cache::CacheConfig& config);

  std::uint32_t num_sets() const {
    return static_cast<std::uint32_t>(payload_->sets.size());
  }
  std::uint32_t set_index_of(MemBlockId block) const {
    return block & set_mask_;
  }
  const AbstractSet& set_for_block(MemBlockId block) const {
    return payload_->sets[set_index_of(block)];
  }
  const AbstractSet& set_at(std::uint32_t index) const;

  void update_must(MemBlockId block) {
    detach();
    payload_->sets[set_index_of(block)].update_must(block);
  }
  void update_may(MemBlockId block) {
    detach();
    payload_->sets[set_index_of(block)].update_may(block);
  }
  bool must_contain(MemBlockId block) const {
    return set_for_block(block).contains(block);
  }
  bool may_contain(MemBlockId block) const {
    return set_for_block(block).contains(block);
  }

  static AbstractCache join_must(const AbstractCache& a,
                                 const AbstractCache& b);
  static AbstractCache join_may(const AbstractCache& a, const AbstractCache& b);

  /// In-place accumulating joins; *this becomes join(*this, other). Returns
  /// true iff any set changed. Joining a state with itself (shared payload)
  /// is a pointer compare — the dominant reconvergence case under interning.
  bool join_must_with(const AbstractCache& other);
  bool join_may_with(const AbstractCache& other);

  /// True iff both states alias one payload (=> equal, O(1)).
  bool shares_storage_with(const AbstractCache& other) const {
    return payload_ == other.payload_;
  }

  /// FNV-1a over the entry lists; the hash-consing key of the fixpoint's
  /// state interner (deep equality confirms on collision).
  std::uint64_t content_hash() const;

  friend bool operator==(const AbstractCache& a, const AbstractCache& b) {
    return a.set_mask_ == b.set_mask_ &&
           (a.payload_ == b.payload_ || a.payload_->sets == b.payload_->sets);
  }

  std::string to_string() const;

 private:
  struct Payload {
    std::vector<AbstractSet> sets;
  };
  void detach() {
    if (payload_.use_count() != 1)
      payload_ = std::make_shared<Payload>(*payload_);
  }

  std::uint32_t set_mask_ = 0;  ///< num_sets - 1 (power of two)
  std::shared_ptr<Payload> payload_;
};

}  // namespace ucp::analysis
