#include "analysis/cache_analysis.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/cancellation.hpp"
#include "support/check.hpp"

namespace ucp::analysis {

std::string classification_name(Classification c) {
  switch (c) {
    case Classification::kAlwaysHit:
      return "always-hit";
    case Classification::kAlwaysMiss:
      return "always-miss";
    case Classification::kNotClassified:
      return "not-classified";
  }
  UCP_CHECK_MSG(false, "unknown classification");
}

Classification CacheAnalysisResult::classify(NodeId node,
                                             std::size_t instr_index) const {
  UCP_REQUIRE(node < per_node.size(), "node id out of range");
  UCP_REQUIRE(instr_index < per_node[node].size(),
              "instruction index out of range");
  return per_node[node][instr_index];
}

const MustMay& CacheAnalysisResult::state_in(NodeId node) const {
  UCP_REQUIRE(node < in_states.size(), "node id out of range");
  return in_states[node];
}

const MustMay& CacheAnalysisResult::state_out(NodeId node) const {
  UCP_REQUIRE(node < out_states.size(), "node id out of range");
  return out_states[node];
}

std::uint64_t CacheAnalysisResult::count(Classification c) const {
  std::uint64_t n = 0;
  for (const auto& block : per_node)
    for (Classification cls : block)
      if (cls == c) ++n;
  return n;
}

void apply_instruction(MustMay& state, const ir::Instruction& instr,
                       const ir::Layout& layout) {
  const MemBlockId own = layout.mem_block(instr.id);
  state.must.update_must(own);
  state.may.update_may(own);
  if (instr.is_prefetch()) {
    const MemBlockId target = layout.mem_block(instr.pf_target);
    state.must.update_must(target);
    state.may.update_may(target);
  }
}

namespace {

MustMay transfer_block(const MustMay& in, const ir::BasicBlock& bb,
                       const ir::Layout& layout) {
  MustMay out = in;
  for (const ir::Instruction& instr : bb.instrs)
    apply_instruction(out, instr, layout);
  return out;
}

/// Accumulates `contrib` into `in`: the first contribution is copied (the
/// neutral element of the must join is "everything cached", which has no
/// finite representation, so the fixpoint tracks has-state explicitly);
/// later ones join in place. Returns true iff `in` changed.
bool merge_in(MustMay& in, bool& has_in, const MustMay& contrib) {
  if (!has_in) {
    in = contrib;
    has_in = true;
    return true;
  }
  const bool must_changed = in.must.join_must_with(contrib.must);
  const bool may_changed = in.may.join_may_with(contrib.may);
  return must_changed || may_changed;
}

void classify_block(const MustMay& in, const ir::BasicBlock& bb,
                    const ir::Layout& layout,
                    std::vector<Classification>& cls) {
  MustMay state = in;
  cls.clear();
  cls.reserve(bb.instrs.size());
  for (const ir::Instruction& instr : bb.instrs) {
    const MemBlockId own = layout.mem_block(instr.id);
    Classification c = Classification::kNotClassified;
    if (state.must.must_contain(own)) {
      c = Classification::kAlwaysHit;
    } else if (!state.may.may_contain(own)) {
      c = Classification::kAlwaysMiss;
    }
    cls.push_back(c);
    apply_instruction(state, instr, layout);
  }
}

/// Hash-consing table for converged-enough abstract states: canonicalizes a
/// freshly computed out-state to the first structurally equal state seen in
/// this fixpoint run. After canonicalization, equal states share one COW
/// payload, so the "did the out-state change?" reconvergence test and every
/// downstream join against an identical state degenerate to a pointer
/// compare. Scoped per analysis run — states never leak across programs or
/// configs, and the table dies with the run.
class StateInterner {
 public:
  /// Canonicalizes `c` in place; returns true iff `c` was redirected to an
  /// existing (deduplicated) payload.
  bool intern(AbstractCache& c) {
    std::vector<AbstractCache>& bucket = map_[c.content_hash()];
    for (const AbstractCache& canon : bucket) {
      if (canon == c) {
        if (canon.shares_storage_with(c)) return false;
        c = canon;
        return true;
      }
    }
    bucket.push_back(c);
    return false;
  }

 private:
  std::unordered_map<std::uint64_t, std::vector<AbstractCache>> map_;
};

}  // namespace

CacheAnalysisResult analyze_cache(const ContextGraph& graph,
                                  const ir::Layout& layout,
                                  const cache::CacheConfig& config,
                                  FixpointMode mode) {
  return analyze_cache(graph, graph.program(), layout, config, mode);
}

CacheAnalysisResult analyze_cache(const ContextGraph& graph,
                                  const ir::Program& program,
                                  const ir::Layout& layout,
                                  const cache::CacheConfig& config,
                                  FixpointMode mode) {
  UCP_REQUIRE(program.num_blocks() == graph.program().num_blocks(),
              "program CFG does not match the context graph");
  obs::Span span("analysis.cache.fixpoint");
  const std::size_t n = graph.num_nodes();

  CacheAnalysisResult result;
  const MustMay empty{AbstractCache(config), AbstractCache(config)};
  result.in_states.assign(n, empty);
  result.out_states.assign(n, empty);

  std::vector<bool> has_in(n, false);
  has_in[graph.entry_node()] = true;  // cold cache at program start

  // Instrumentation aggregates locally; one registry add after convergence
  // (never per iteration — see DESIGN.md §11 hot-path discipline).
  std::uint64_t joins = 0;
  std::uint64_t deduped = 0;
  std::size_t peak_worklist = 0;
  std::uint32_t pops = 0;

  if (mode == FixpointMode::kGlobalWorklist) {
    // Legacy global FIFO worklist in topological order (only REST back
    // edges iterate). Kept verbatim as the differential oracle for the
    // SCC-sparse default below.
    std::deque<NodeId> work;
    std::vector<bool> queued(n, false);
    for (NodeId id : graph.topo_order()) {
      work.push_back(id);
      queued[id] = true;
    }
    peak_worklist = work.size();
    while (!work.empty()) {
      // Cancellation point: the fixpoint is the longest uninterruptible
      // stretch of a measurement, so the watchdog needs a poll inside it.
      if ((++pops & 0x3F) == 0) throw_if_cancelled("analyze_cache fixpoint");
      const NodeId id = work.front();
      work.pop_front();
      queued[id] = false;
      if (!has_in[id]) continue;  // no predecessor state yet

      const ir::BasicBlock& bb = program.block(graph.node(id).block);
      MustMay out = transfer_block(result.in_states[id], bb, layout);
      // Any non-empty block caches its own memory blocks, so a freshly
      // computed out-state never equals the empty initializer; an unchanged
      // out-state therefore means successors already merged it.
      const bool out_changed = !(out == result.out_states[id]);
      result.out_states[id] = std::move(out);
      if (!out_changed) continue;

      for (std::uint32_t ei : graph.out_edges(id)) {
        const CgEdge& e = graph.edges()[ei];
        bool was_in = has_in[e.to];
        ++joins;
        if (merge_in(result.in_states[e.to], was_in, result.out_states[id])) {
          has_in[e.to] = true;
          if (!queued[e.to]) {
            work.push_back(e.to);
            queued[e.to] = true;
            peak_worklist = std::max(peak_worklist, work.size());
          }
        }
      }
    }
  } else {
    // SCC-sparse fixpoint: finalize one SCC at a time in condensation
    // order. A node's in-state only ever receives contributions from its
    // own SCC (still iterating) or earlier SCCs (already final), so once an
    // SCC reaches its local fixpoint its states are final — no global
    // re-seeding, no revisiting. Trivial SCCs (single node, no self edge)
    // are a single transfer. Within an SCC, a min-heap on topo position
    // propagates states in ACFG order, which converges loop bodies in few
    // sweeps. Out-states are hash-consed so the reconvergence test and
    // identical-state joins are pointer compares.
    StateInterner interner;
    const std::vector<NodeId>& topo = graph.topo_order();
    const std::vector<NodeId>& order = graph.scc_order();
    const std::vector<std::uint32_t>& begin = graph.scc_begin();
    std::vector<std::uint8_t> queued(n, 0);
    std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                        std::greater<std::uint32_t>>
        heap;

    const auto process = [&](NodeId id) {
      if ((++pops & 0x3F) == 0) throw_if_cancelled("analyze_cache fixpoint");
      if (!has_in[id]) return;  // no predecessor state yet

      const ir::BasicBlock& bb = program.block(graph.node(id).block);
      MustMay out = transfer_block(result.in_states[id], bb, layout);
      deduped += interner.intern(out.must) ? 1 : 0;
      deduped += interner.intern(out.may) ? 1 : 0;
      // Canonicalized states make this a pointer compare on the hot
      // (reconverged) path.
      const bool out_changed = !(out == result.out_states[id]);
      result.out_states[id] = std::move(out);
      if (!out_changed) return;

      const std::uint32_t my_scc = graph.scc_of(id);
      for (std::uint32_t ei : graph.out_edges(id)) {
        const CgEdge& e = graph.edges()[ei];
        bool was_in = has_in[e.to];
        ++joins;
        if (merge_in(result.in_states[e.to], was_in, result.out_states[id])) {
          has_in[e.to] = true;
          // Successors in later SCCs keep the merged state and run when
          // their SCC's turn comes; only same-SCC successors re-enter the
          // local worklist (skip-propagation).
          if (graph.scc_of(e.to) == my_scc && !queued[e.to]) {
            queued[e.to] = 1;
            heap.push(graph.topo_pos(e.to));
            peak_worklist = std::max(peak_worklist, heap.size());
          }
        }
      }
    };

    for (std::uint32_t s = 0; s < graph.scc_count(); ++s) {
      if (graph.scc_trivial(s)) {
        process(order[begin[s]]);
        continue;
      }
      for (std::uint32_t i = begin[s]; i < begin[s + 1]; ++i) {
        heap.push(graph.topo_pos(order[i]));
        queued[order[i]] = 1;
      }
      peak_worklist = std::max(peak_worklist, heap.size());
      while (!heap.empty()) {
        const NodeId id = topo[heap.top()];
        heap.pop();
        queued[id] = 0;
        process(id);
      }
    }
  }

  if (obs::enabled()) {
    static obs::Counter& c_runs =
        obs::registry().counter("analysis.cache.fixpoints");
    static obs::Counter& c_pops =
        obs::registry().counter("analysis.cache.worklist_pops");
    static obs::Counter& c_joins =
        obs::registry().counter("analysis.cache.joins");
    static obs::Counter& c_sccs =
        obs::registry().counter("analysis.cache.scc_count");
    static obs::Counter& c_dedup =
        obs::registry().counter("analysis.cache.states_deduped");
    static obs::Gauge& g_peak =
        obs::registry().gauge("analysis.cache.peak_worklist");
    c_runs.increment();
    c_pops.add(pops);
    c_joins.add(joins);
    c_sccs.add(graph.scc_count());
    c_dedup.add(deduped);
    g_peak.set_max(static_cast<std::int64_t>(peak_worklist));
  }

  // Final classification pass with the converged states.
  result.per_node.assign(n, {});
  for (NodeId id = 0; id < n; ++id) {
    const ir::BasicBlock& bb = program.block(graph.node(id).block);
    classify_block(result.in_states[id], bb, layout, result.per_node[id]);
  }
  return result;
}

// ---------------------------------------------------------------------------
// IncrementalCacheAnalysis
// ---------------------------------------------------------------------------

void IncrementalCacheAnalysis::block_signature(const ir::BasicBlock& bb,
                                               const ir::Layout& layout,
                                               BlockSig& out) {
  out.clear();
  out.reserve(bb.instrs.size());
  for (const ir::Instruction& instr : bb.instrs) {
    out.push_back(layout.mem_block(instr.id));
    if (instr.is_prefetch()) out.push_back(layout.mem_block(instr.pf_target));
  }
}

IncrementalCacheAnalysis::IncrementalCacheAnalysis(
    const ContextGraph& graph, const ir::Program& program,
    const cache::CacheConfig& config)
    : graph_(&graph),
      config_(config),
      layout_(program, config.block_bytes),
      base_(analyze_cache(graph, program, layout_, config)) {
  base_sigs_.resize(program.num_blocks());
  for (ir::BlockId b = 0; b < program.num_blocks(); ++b)
    block_signature(program.block(b), layout_, base_sigs_[b]);
}

IncrementalCacheAnalysis::TrialResult IncrementalCacheAnalysis::analyze_trial(
    const ir::Program& trial) {
  UCP_REQUIRE(trial.num_blocks() == graph_->program().num_blocks(),
              "trial program CFG does not match the context graph");
  ++trials_;
  if (obs::enabled()) {
    static obs::Counter& c_trials =
        obs::registry().counter("analysis.incremental.trials");
    c_trials.increment();
  }
  TrialResult t{ir::Layout(trial, config_.block_bytes), {}, {}, {}, {}};

  // Blocks whose abstract transfer changed: an edit to the instruction list
  // or any relocation across a memory-block boundary changes the signature
  // (an insertion strictly lengthens it, so equal-length coincidences cannot
  // mask an edit).
  std::vector<std::uint8_t> block_changed(trial.num_blocks(), 0);
  BlockSig sig;
  bool any_changed = false;
  for (ir::BlockId b = 0; b < trial.num_blocks(); ++b) {
    block_signature(trial.block(b), t.layout, sig);
    if (sig != base_sigs_[b]) {
      block_changed[b] = 1;
      any_changed = true;
    }
  }
  if (!any_changed) return t;  // transfer-identical: base states stand

  // Affected = changed-transfer nodes plus everything reachable from them
  // (back edges included). Nodes outside this closure have an untouched
  // equation subsystem, so their base states already solve the trial's
  // fixpoint (DESIGN.md §8).
  const std::size_t n = graph_->num_nodes();
  affected_mark_.assign(n, 0);
  std::vector<NodeId> stack;
  for (NodeId id = 0; id < n; ++id) {
    if (block_changed[graph_->node(id).block]) {
      affected_mark_[id] = 1;
      stack.push_back(id);
    }
  }
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (std::uint32_t ei : graph_->out_edges(v)) {
      const NodeId w = graph_->edges()[ei].to;
      if (!affected_mark_[w]) {
        affected_mark_[w] = 1;
        stack.push_back(w);
      }
    }
  }

  slot_of_.assign(n, -1);
  for (NodeId id : graph_->topo_order()) {
    if (!affected_mark_[id]) continue;
    slot_of_[id] = static_cast<std::int32_t>(t.affected.size());
    t.affected.push_back(id);
  }
  const std::size_t m = t.affected.size();
  nodes_reanalyzed_ += m;
  if (obs::enabled()) {
    static obs::Counter& c_nodes =
        obs::registry().counter("analysis.incremental.nodes_reanalyzed");
    c_nodes.add(m);
  }

  const MustMay empty{AbstractCache(config_), AbstractCache(config_)};
  t.in_states.assign(m, empty);
  t.out_states.assign(m, empty);
  std::vector<std::uint8_t> has_in(m, 0);
  std::vector<std::uint8_t> has_out(m, 0);

  // Boundary seed: every unaffected predecessor's converged base out-state
  // is final in the trial too, so it contributes as a constant. The graph
  // is built by traversal from the entry, so every predecessor's state is
  // meaningful (no unreachable nodes exist).
  if (affected_mark_[graph_->entry_node()])
    has_in[slot_of_[graph_->entry_node()]] = 1;  // cold cache at entry
  for (const CgEdge& e : graph_->edges()) {
    if (!affected_mark_[e.to] || affected_mark_[e.from]) continue;
    const std::size_t j = static_cast<std::size_t>(slot_of_[e.to]);
    bool was_in = has_in[j] != 0;
    merge_in(t.in_states[j], was_in, base_.out_states[e.from]);
    has_in[j] = 1;
  }

  // Restricted worklist fixpoint over the affected subgraph; a min-heap on
  // topo position propagates states in ACFG order (the fixpoint is the
  // same unique lfp regardless — the heap only reaches it in fewer
  // transfers when the closure spans loop nests).
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<std::uint32_t>>
      work;
  std::vector<std::uint8_t> queued(n, 0);
  for (NodeId v : t.affected) {
    work.push(graph_->topo_pos(v));
    queued[v] = 1;
  }
  std::uint32_t pops = 0;
  while (!work.empty()) {
    if ((++pops & 0x3F) == 0)
      throw_if_cancelled("incremental re-analysis fixpoint");
    const NodeId v = graph_->topo_order()[work.top()];
    work.pop();
    queued[v] = 0;
    const std::size_t i = static_cast<std::size_t>(slot_of_[v]);
    if (!has_in[i]) continue;

    const ir::BasicBlock& bb = trial.block(graph_->node(v).block);
    MustMay out = transfer_block(t.in_states[i], bb, t.layout);
    if (has_out[i] && out == t.out_states[i]) continue;
    t.out_states[i] = std::move(out);
    has_out[i] = 1;

    for (std::uint32_t ei : graph_->out_edges(v)) {
      const NodeId w = graph_->edges()[ei].to;  // affected, by closure
      const std::size_t j = static_cast<std::size_t>(slot_of_[w]);
      bool was_in = has_in[j] != 0;
      const bool changed = merge_in(t.in_states[j], was_in, t.out_states[i]);
      has_in[j] = 1;
      if (changed && !queued[w]) {
        work.push(graph_->topo_pos(w));
        queued[w] = 1;
      }
    }
  }

  t.cls.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const ir::BasicBlock& bb = trial.block(graph_->node(t.affected[i]).block);
    classify_block(t.in_states[i], bb, t.layout, t.cls[i]);
  }
  return t;
}

void IncrementalCacheAnalysis::promote(const ir::Program& trial_program,
                                       TrialResult&& t) {
  layout_ = std::move(t.layout);
  for (std::size_t i = 0; i < t.affected.size(); ++i) {
    const NodeId v = t.affected[i];
    base_.in_states[v] = std::move(t.in_states[i]);
    base_.out_states[v] = std::move(t.out_states[i]);
    base_.per_node[v] = std::move(t.cls[i]);
  }
  for (ir::BlockId b = 0; b < trial_program.num_blocks(); ++b)
    block_signature(trial_program.block(b), layout_, base_sigs_[b]);
}

}  // namespace ucp::analysis
