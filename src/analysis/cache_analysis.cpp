#include "analysis/cache_analysis.hpp"

#include <deque>

#include "support/check.hpp"

namespace ucp::analysis {

std::string classification_name(Classification c) {
  switch (c) {
    case Classification::kAlwaysHit:
      return "always-hit";
    case Classification::kAlwaysMiss:
      return "always-miss";
    case Classification::kNotClassified:
      return "not-classified";
  }
  UCP_CHECK_MSG(false, "unknown classification");
}

Classification CacheAnalysisResult::classify(NodeId node,
                                             std::size_t instr_index) const {
  UCP_REQUIRE(node < per_node.size(), "node id out of range");
  UCP_REQUIRE(instr_index < per_node[node].size(),
              "instruction index out of range");
  return per_node[node][instr_index];
}

const MustMay& CacheAnalysisResult::state_in(NodeId node) const {
  UCP_REQUIRE(node < in_states.size(), "node id out of range");
  return in_states[node];
}

const MustMay& CacheAnalysisResult::state_out(NodeId node) const {
  UCP_REQUIRE(node < out_states.size(), "node id out of range");
  return out_states[node];
}

std::uint64_t CacheAnalysisResult::count(Classification c) const {
  std::uint64_t n = 0;
  for (const auto& block : per_node)
    for (Classification cls : block)
      if (cls == c) ++n;
  return n;
}

void apply_instruction(MustMay& state, const ir::Instruction& instr,
                       const ir::Layout& layout) {
  const MemBlockId own = layout.mem_block(instr.id);
  state.must.update_must(own);
  state.may.update_may(own);
  if (instr.is_prefetch()) {
    const MemBlockId target = layout.mem_block(instr.pf_target);
    state.must.update_must(target);
    state.may.update_may(target);
  }
}

namespace {

MustMay transfer_block(const MustMay& in, const ir::BasicBlock& bb,
                       const ir::Layout& layout) {
  MustMay out = in;
  for (const ir::Instruction& instr : bb.instrs)
    apply_instruction(out, instr, layout);
  return out;
}

MustMay join(const MustMay& a, const MustMay& b) {
  return MustMay{AbstractCache::join_must(a.must, b.must),
                 AbstractCache::join_may(a.may, b.may)};
}

}  // namespace

CacheAnalysisResult analyze_cache(const ContextGraph& graph,
                                  const ir::Layout& layout,
                                  const cache::CacheConfig& config) {
  return analyze_cache(graph, graph.program(), layout, config);
}

CacheAnalysisResult analyze_cache(const ContextGraph& graph,
                                  const ir::Program& program,
                                  const ir::Layout& layout,
                                  const cache::CacheConfig& config) {
  UCP_REQUIRE(program.num_blocks() == graph.program().num_blocks(),
              "program CFG does not match the context graph");
  const std::size_t n = graph.num_nodes();

  CacheAnalysisResult result;
  const MustMay empty{AbstractCache(config), AbstractCache(config)};
  result.in_states.assign(n, empty);
  result.out_states.assign(n, empty);

  std::vector<bool> has_in(n, false);
  has_in[graph.entry_node()] = true;  // cold cache at program start

  // Worklist fixpoint in topological order (only REST back edges iterate).
  std::deque<NodeId> work;
  std::vector<bool> queued(n, false);
  for (NodeId id : graph.topo_order()) {
    work.push_back(id);
    queued[id] = true;
  }

  while (!work.empty()) {
    const NodeId id = work.front();
    work.pop_front();
    queued[id] = false;
    if (!has_in[id]) continue;  // no predecessor state yet

    const ir::BasicBlock& bb = program.block(graph.node(id).block);
    MustMay out = transfer_block(result.in_states[id], bb, layout);
    // Any non-empty block caches its own memory blocks, so a freshly
    // computed out-state never equals the empty initializer; an unchanged
    // out-state therefore means successors already merged it.
    const bool out_changed = !(out == result.out_states[id]);
    result.out_states[id] = std::move(out);
    if (!out_changed) continue;

    for (std::uint32_t ei : graph.out_edges(id)) {
      const CgEdge& e = graph.edges()[ei];
      MustMay merged = has_in[e.to]
                           ? join(result.in_states[e.to],
                                  result.out_states[id])
                           : result.out_states[id];
      if (!has_in[e.to] || !(merged == result.in_states[e.to])) {
        result.in_states[e.to] = std::move(merged);
        has_in[e.to] = true;
        if (!queued[e.to]) {
          work.push_back(e.to);
          queued[e.to] = true;
        }
      }
    }
  }

  // Final classification pass with the converged states.
  result.per_node.assign(n, {});
  for (NodeId id = 0; id < n; ++id) {
    const ir::BasicBlock& bb = program.block(graph.node(id).block);
    MustMay state = result.in_states[id];
    auto& cls = result.per_node[id];
    cls.reserve(bb.instrs.size());
    for (const ir::Instruction& instr : bb.instrs) {
      const MemBlockId own = layout.mem_block(instr.id);
      Classification c = Classification::kNotClassified;
      if (state.must.must_contain(own)) {
        c = Classification::kAlwaysHit;
      } else if (!state.may.may_contain(own)) {
        c = Classification::kAlwaysMiss;
      }
      cls.push_back(c);
      apply_instruction(state, instr, layout);
    }
  }
  return result;
}

}  // namespace ucp::analysis
