#pragma once

#include <cstdint>
#include <vector>

#include "analysis/context_graph.hpp"
#include "analysis/domain.hpp"
#include "ir/layout.hpp"

namespace ucp::analysis {

/// Outcome of abstract interpretation for one instruction fetch in one
/// context. WCET accounting charges hit time to kAlwaysHit and miss time to
/// everything else (the sound over-approximation).
enum class Classification : std::uint8_t {
  kAlwaysHit,
  kAlwaysMiss,
  kNotClassified,
};

std::string classification_name(Classification c);

/// Joint must/may cache state.
struct MustMay {
  AbstractCache must;
  AbstractCache may;

  friend bool operator==(const MustMay&, const MustMay&) = default;
};

/// Result of the must/may analysis over a VIVU context graph: the abstract
/// state entering every node, and a classification for every instruction
/// fetch (per context).
///
/// Prefetch semantics: a kPrefetch instruction is itself a fetched
/// instruction (classified like any other reference); its *effect* installs
/// the target block at MRU in both domains. Treating the install as
/// immediate is sound for WCET only when every prefetch is *effective*
/// (Definition 10) — the optimizer guarantees that for the prefetches it
/// inserts, and the concrete simulator models late prefetches exactly so
/// tests can audit the assumption.
class CacheAnalysisResult {
 public:
  Classification classify(NodeId node, std::size_t instr_index) const;
  const MustMay& state_in(NodeId node) const;
  /// State after executing the whole block of `node`.
  const MustMay& state_out(NodeId node) const;

  /// Counts per classification across all nodes (diagnostics).
  std::uint64_t count(Classification c) const;

  std::vector<std::vector<Classification>> per_node;  // [node][instr index]
  std::vector<MustMay> in_states;                     // [node]
  std::vector<MustMay> out_states;                    // [node]
};

/// Fixpoint iteration strategy. Both compute the same least fixpoint (the
/// equation system has a unique lfp, so iteration order cannot change the
/// result — DESIGN.md §14); they differ only in how much work convergence
/// takes.
enum class FixpointMode : std::uint8_t {
  /// Default: Tarjan-decompose the context graph once, finalize one SCC at
  /// a time in condensation order with a topo-position priority worklist,
  /// and hash-cons out-states so reconvergence checks and re-joins of
  /// identical states are pointer comparisons.
  kSccSparse,
  /// Legacy global FIFO worklist over all nodes; retained as the
  /// differential oracle for the equivalence suite.
  kGlobalWorklist,
};

/// Runs the must+may fixpoint over `graph` with instruction addresses taken
/// from `layout`, for cache geometry `config`.
///
/// `program` may differ from `graph.program()` as long as it has the same
/// CFG structure (same blocks and successors); the optimizer exploits this
/// to evaluate prefetch-equivalent candidate programs (Definition 5) against
/// one context graph — inserting straight-line instructions never changes
/// the VIVU expansion.
CacheAnalysisResult analyze_cache(const ContextGraph& graph,
                                  const ir::Program& program,
                                  const ir::Layout& layout,
                                  const cache::CacheConfig& config,
                                  FixpointMode mode = FixpointMode::kSccSparse);

/// Convenience overload using the graph's own program.
CacheAnalysisResult analyze_cache(const ContextGraph& graph,
                                  const ir::Layout& layout,
                                  const cache::CacheConfig& config,
                                  FixpointMode mode = FixpointMode::kSccSparse);

/// Applies one instruction's effect (its own fetch, plus the prefetch
/// install if it is a kPrefetch) to a MustMay state. Shared by the fixpoint
/// and by the optimizer's incremental re-evaluation.
void apply_instruction(MustMay& state, const ir::Instruction& instr,
                       const ir::Layout& layout);

/// Incremental must/may re-analysis for prefetch-equivalent program edits
/// (DESIGN.md §8). Holds the converged analysis of a *base* program and
/// re-analyzes candidate variants by seeding a worklist fixpoint only from
/// the context nodes whose transfer function actually changed — for a
/// prefetch insertion, the edited basic block plus every block whose
/// instructions were relocated across a memory-block boundary — and the
/// nodes reachable from them. Unreachable-from-change nodes provably keep
/// their states (their equation subsystem is untouched), so the recomputed
/// fixpoint is bit-identical to a from-scratch `analyze_cache` of the
/// variant, at a fraction of the work.
class IncrementalCacheAnalysis {
 public:
  IncrementalCacheAnalysis(const ContextGraph& graph,
                           const ir::Program& program,
                           const cache::CacheConfig& config);

  /// Converged analysis of the current base program.
  const CacheAnalysisResult& result() const { return base_; }
  /// Layout of the current base program.
  const ir::Layout& layout() const { return layout_; }

  /// Re-analysis of one candidate program, stored sparsely: states and
  /// classifications for the affected nodes only; every other node is
  /// unchanged from the base.
  struct TrialResult {
    ir::Layout layout;
    std::vector<NodeId> affected;                  // ascending node ids
    std::vector<MustMay> in_states;                // parallel to affected
    std::vector<MustMay> out_states;               // parallel to affected
    std::vector<std::vector<Classification>> cls;  // parallel to affected
  };

  /// Analyzes `trial` (same CFG as the base, possibly with straight-line
  /// insertions and relocated addresses) against the base fixpoint.
  TrialResult analyze_trial(const ir::Program& trial);

  /// Adopts a trial as the new base: `trial_program` must be the program
  /// `t` was computed from.
  void promote(const ir::Program& trial_program, TrialResult&& t);

  // --- instrumentation (surfaces in OptimizationReport) -------------------
  std::size_t trials() const { return trials_; }
  /// Cumulative nodes re-analyzed across all trials.
  std::size_t nodes_reanalyzed() const { return nodes_reanalyzed_; }
  std::size_t graph_nodes() const { return graph_->num_nodes(); }

 private:
  /// Per-basic-block transfer signature: the memory blocks each instruction
  /// touches (own fetch, plus prefetch target). Two layouts give a block
  /// the same abstract transfer iff the signatures match.
  using BlockSig = std::vector<MemBlockId>;
  static void block_signature(const ir::BasicBlock& bb,
                              const ir::Layout& layout, BlockSig& out);

  const ContextGraph* graph_;
  cache::CacheConfig config_;
  ir::Layout layout_;
  CacheAnalysisResult base_;
  std::vector<BlockSig> base_sigs_;  // [BlockId]

  std::size_t trials_ = 0;
  std::size_t nodes_reanalyzed_ = 0;

  // Scratch buffers reused across trials (one allocation, many candidates).
  std::vector<std::uint8_t> affected_mark_;
  std::vector<std::int32_t> slot_of_;
};

}  // namespace ucp::analysis
