#pragma once

#include <cstdint>
#include <vector>

#include "analysis/context_graph.hpp"
#include "analysis/domain.hpp"
#include "ir/layout.hpp"

namespace ucp::analysis {

/// Outcome of abstract interpretation for one instruction fetch in one
/// context. WCET accounting charges hit time to kAlwaysHit and miss time to
/// everything else (the sound over-approximation).
enum class Classification : std::uint8_t {
  kAlwaysHit,
  kAlwaysMiss,
  kNotClassified,
};

std::string classification_name(Classification c);

/// Joint must/may cache state.
struct MustMay {
  AbstractCache must;
  AbstractCache may;

  friend bool operator==(const MustMay&, const MustMay&) = default;
};

/// Result of the must/may analysis over a VIVU context graph: the abstract
/// state entering every node, and a classification for every instruction
/// fetch (per context).
///
/// Prefetch semantics: a kPrefetch instruction is itself a fetched
/// instruction (classified like any other reference); its *effect* installs
/// the target block at MRU in both domains. Treating the install as
/// immediate is sound for WCET only when every prefetch is *effective*
/// (Definition 10) — the optimizer guarantees that for the prefetches it
/// inserts, and the concrete simulator models late prefetches exactly so
/// tests can audit the assumption.
class CacheAnalysisResult {
 public:
  Classification classify(NodeId node, std::size_t instr_index) const;
  const MustMay& state_in(NodeId node) const;
  /// State after executing the whole block of `node`.
  const MustMay& state_out(NodeId node) const;

  /// Counts per classification across all nodes (diagnostics).
  std::uint64_t count(Classification c) const;

  std::vector<std::vector<Classification>> per_node;  // [node][instr index]
  std::vector<MustMay> in_states;                     // [node]
  std::vector<MustMay> out_states;                    // [node]
};

/// Runs the must+may fixpoint over `graph` with instruction addresses taken
/// from `layout`, for cache geometry `config`.
///
/// `program` may differ from `graph.program()` as long as it has the same
/// CFG structure (same blocks and successors); the optimizer exploits this
/// to evaluate prefetch-equivalent candidate programs (Definition 5) against
/// one context graph — inserting straight-line instructions never changes
/// the VIVU expansion.
CacheAnalysisResult analyze_cache(const ContextGraph& graph,
                                  const ir::Program& program,
                                  const ir::Layout& layout,
                                  const cache::CacheConfig& config);

/// Convenience overload using the graph's own program.
CacheAnalysisResult analyze_cache(const ContextGraph& graph,
                                  const ir::Layout& layout,
                                  const cache::CacheConfig& config);

/// Applies one instruction's effect (its own fetch, plus the prefetch
/// install if it is a kPrefetch) to a MustMay state. Shared by the fixpoint
/// and by the optimizer's incremental re-evaluation.
void apply_instruction(MustMay& state, const ir::Instruction& instr,
                       const ir::Layout& layout);

}  // namespace ucp::analysis
