#include "analysis/persistence.hpp"

#include <algorithm>
#include <queue>

#include "analysis/cache_analysis.hpp"
#include "support/check.hpp"

namespace ucp::analysis {

namespace {

/// One cache set in the persistence domain. For each block seen on some
/// path we track the set of DISTINCT other blocks accessed since its last
/// access (LRU evicts b only after `assoc` distinct conflicts), plus a
/// sticky "may have been evicted" flag set the moment the conflict set
/// saturates. The flag never resets: persistence is a whole-execution
/// property, so one possible eviction anywhere disqualifies the block.
///
/// This is the conflict-counting formulation; the classical aging domain
/// (age others only up to the accessed block's own age, join by max age)
/// under-counts conflicts across joins and misclassifies loop headers whose
/// bodies overflow the set — the soundness fuzzer finds that within a few
/// hundred seeds.
class PersistSet {
 public:
  explicit PersistSet(std::uint8_t assoc) : assoc_(assoc) {}

  /// True if `block` may have been evicted since it was last loaded.
  /// Blocks never seen on any path are not (their first access is the one
  /// miss first-miss permits).
  bool may_be_evicted(MemBlockId block) const {
    const auto it = find(entries_, block);
    return it != entries_.end() && it->block == block && it->evicted;
  }

  void update(MemBlockId block) {
    for (Tracked& e : entries_) {
      if (e.block == block || e.evicted) continue;
      const auto c = std::lower_bound(e.conflicts.begin(), e.conflicts.end(),
                                      block);
      if (c != e.conflicts.end() && *c == block) continue;
      e.conflicts.insert(c, block);
      if (e.conflicts.size() >= assoc_) {
        e.evicted = true;
        e.conflicts.clear();  // canonical: evicted entries carry no set
      }
    }
    const auto it = find(entries_, block);
    if (it != entries_.end() && it->block == block) {
      it->conflicts.clear();  // re-access: future eviction needs assoc NEW
                              // distinct conflicts (evicted stays sticky)
    } else {
      entries_.insert(it, Tracked{block, false, {}});
    }
  }

  static PersistSet join(const PersistSet& a, const PersistSet& b) {
    UCP_CHECK(a.assoc_ == b.assoc_);
    PersistSet out(a.assoc_);
    auto ia = a.entries_.begin();
    auto ib = b.entries_.begin();
    while (ia != a.entries_.end() || ib != b.entries_.end()) {
      if (ib == b.entries_.end() ||
          (ia != a.entries_.end() && ia->block < ib->block)) {
        out.entries_.push_back(*ia++);
      } else if (ia == a.entries_.end() || ib->block < ia->block) {
        out.entries_.push_back(*ib++);
      } else {
        Tracked merged{ia->block, ia->evicted || ib->evicted, {}};
        if (!merged.evicted) {
          std::set_union(ia->conflicts.begin(), ia->conflicts.end(),
                         ib->conflicts.begin(), ib->conflicts.end(),
                         std::back_inserter(merged.conflicts));
          if (merged.conflicts.size() >= out.assoc_) {
            merged.evicted = true;
            merged.conflicts.clear();
          }
        }
        out.entries_.push_back(std::move(merged));
        ++ia;
        ++ib;
      }
    }
    return out;
  }

  friend bool operator==(const PersistSet&, const PersistSet&) = default;

 private:
  struct Tracked {
    MemBlockId block;
    bool evicted = false;
    /// Distinct conflicting blocks since the last access; sorted, empty
    /// once `evicted` (the flag subsumes it). Size < assoc by invariant.
    std::vector<MemBlockId> conflicts;

    friend bool operator==(const Tracked&, const Tracked&) = default;
  };

  static std::vector<Tracked>::const_iterator find(
      const std::vector<Tracked>& entries, MemBlockId block) {
    return std::lower_bound(
        entries.begin(), entries.end(), block,
        [](const Tracked& e, MemBlockId b) { return e.block < b; });
  }
  static std::vector<Tracked>::iterator find(std::vector<Tracked>& entries,
                                             MemBlockId block) {
    return std::lower_bound(
        entries.begin(), entries.end(), block,
        [](const Tracked& e, MemBlockId b) { return e.block < b; });
  }

  std::uint8_t assoc_;
  std::vector<Tracked> entries_;  // sorted by block id
};

struct PersistCache {
  explicit PersistCache(const cache::CacheConfig& config)
      : config(config),
        sets(config.num_sets(),
             PersistSet(static_cast<std::uint8_t>(config.assoc))) {}

  void update(MemBlockId block) { sets[config.set_of(block)].update(block); }
  const PersistSet& set_for(MemBlockId block) const {
    return sets[config.set_of(block)];
  }

  static PersistCache join(const PersistCache& a, const PersistCache& b) {
    PersistCache out(a.config);
    for (std::size_t i = 0; i < out.sets.size(); ++i)
      out.sets[i] = PersistSet::join(a.sets[i], b.sets[i]);
    return out;
  }

  friend bool operator==(const PersistCache& x, const PersistCache& y) {
    return x.sets == y.sets;
  }

  cache::CacheConfig config;
  std::vector<PersistSet> sets;
};

}  // namespace

bool PersistenceResult::persistent(NodeId node,
                                   std::size_t instr_index) const {
  UCP_REQUIRE(node < per_node.size(), "node id out of range");
  UCP_REQUIRE(instr_index < per_node[node].size(),
              "instruction index out of range");
  return per_node[node][instr_index];
}

PersistenceResult analyze_persistence(const ContextGraph& graph,
                                      const ir::Program& program,
                                      const ir::Layout& layout,
                                      const cache::CacheConfig& config) {
  const std::size_t n = graph.num_nodes();
  std::vector<PersistCache> in_states(n, PersistCache(config));
  std::vector<PersistCache> out_states(n, PersistCache(config));
  std::vector<bool> has_in(n, false);
  has_in[graph.entry_node()] = true;

  // SCC-sparse driver, mirroring analyze_cache: finalize one SCC at a time
  // in condensation order with a topo-position min-heap. The persistence
  // join allocates (set unions), so the transfers this skips — no global
  // re-seeding, one transfer per trivial SCC — are the expensive kind. The
  // lfp is unique, so the result matches the old global-FIFO loop exactly.
  const std::vector<NodeId>& topo = graph.topo_order();
  const std::vector<NodeId>& order = graph.scc_order();
  const std::vector<std::uint32_t>& begin = graph.scc_begin();
  std::vector<std::uint8_t> queued(n, 0);
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<std::uint32_t>>
      heap;

  const auto process = [&](NodeId id) {
    if (!has_in[id]) return;

    PersistCache out = in_states[id];
    const ir::BasicBlock& bb = program.block(graph.node(id).block);
    for (const ir::Instruction& in : bb.instrs) {
      out.update(layout.mem_block(in.id));
      if (in.is_prefetch()) out.update(layout.mem_block(in.pf_target));
    }
    const bool changed = !(out == out_states[id]);
    out_states[id] = std::move(out);
    if (!changed) return;

    const std::uint32_t my_scc = graph.scc_of(id);
    for (std::uint32_t ei : graph.out_edges(id)) {
      const CgEdge& e = graph.edges()[ei];
      PersistCache merged =
          has_in[e.to] ? PersistCache::join(in_states[e.to], out_states[id])
                       : out_states[id];
      if (!has_in[e.to] || !(merged == in_states[e.to])) {
        in_states[e.to] = std::move(merged);
        has_in[e.to] = true;
        if (graph.scc_of(e.to) == my_scc && !queued[e.to]) {
          heap.push(graph.topo_pos(e.to));
          queued[e.to] = 1;
        }
      }
    }
  };

  for (std::uint32_t s = 0; s < graph.scc_count(); ++s) {
    if (graph.scc_trivial(s)) {
      process(order[begin[s]]);
      continue;
    }
    for (std::uint32_t i = begin[s]; i < begin[s + 1]; ++i) {
      heap.push(graph.topo_pos(order[i]));
      queued[order[i]] = 1;
    }
    while (!heap.empty()) {
      const NodeId id = topo[heap.top()];
      heap.pop();
      queued[id] = 0;
      process(id);
    }
  }

  PersistenceResult result;
  result.per_node.assign(n, {});
  for (NodeId id = 0; id < n; ++id) {
    PersistCache state = in_states[id];
    const ir::BasicBlock& bb = program.block(graph.node(id).block);
    auto& flags = result.per_node[id];
    flags.reserve(bb.instrs.size());
    for (const ir::Instruction& in : bb.instrs) {
      const MemBlockId block = layout.mem_block(in.id);
      // Persistent: the block may be absent (not yet loaded: the one
      // allowed first miss) but must never have become evictable.
      flags.push_back(!state.set_for(block).may_be_evicted(block));
      state.update(block);
      if (in.is_prefetch()) state.update(layout.mem_block(in.pf_target));
    }
  }
  return result;
}

std::size_t persistence_gain(const ContextGraph& graph,
                             const ir::Program& program,
                             const ir::Layout& layout,
                             const cache::CacheConfig& config) {
  const CacheAnalysisResult must_may =
      analyze_cache(graph, program, layout, config);
  const PersistenceResult persist =
      analyze_persistence(graph, program, layout, config);

  std::size_t gain = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (std::size_t i = 0; i < must_may.per_node[v].size(); ++i) {
      if (must_may.per_node[v][i] == Classification::kNotClassified &&
          persist.persistent(v, i))
        ++gain;
    }
  }
  return gain;
}

}  // namespace ucp::analysis
