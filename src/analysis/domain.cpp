#include "analysis/domain.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace ucp::analysis {

int AbstractSet::age_of(MemBlockId block) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), block,
      [](const AgedBlock& e, MemBlockId b) { return e.block < b; });
  if (it != entries_.end() && it->block == block) return it->age;
  return -1;
}

void AbstractSet::insert_at_zero_aging(MemBlockId block, int old_age,
                                       bool may_domain) {
  // Blocks with age strictly below the threshold are pushed one step older;
  // in the may domain blocks sharing the accessed block's age move too.
  const int threshold =
      old_age < 0 ? assoc_ : (may_domain ? old_age + 1 : old_age);

  for (AgedBlock& e : entries_) {
    if (e.block == block) continue;
    if (e.age < threshold) ++e.age;
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const AgedBlock& e) {
                                  return e.block != block &&
                                         e.age >= assoc_;
                                }),
                 entries_.end());

  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), block,
      [](const AgedBlock& e, MemBlockId b) { return e.block < b; });
  if (it != entries_.end() && it->block == block) {
    it->age = 0;
  } else {
    entries_.insert(it, AgedBlock{block, 0});
  }
}

void AbstractSet::update_must(MemBlockId block) {
  insert_at_zero_aging(block, age_of(block), /*may_domain=*/false);
}

void AbstractSet::update_may(MemBlockId block) {
  insert_at_zero_aging(block, age_of(block), /*may_domain=*/true);
}

AbstractSet AbstractSet::join_must(const AbstractSet& a, const AbstractSet& b) {
  UCP_REQUIRE(a.assoc_ == b.assoc_, "joining sets of different associativity");
  AbstractSet out(a.assoc_);
  auto ia = a.entries_.begin();
  auto ib = b.entries_.begin();
  while (ia != a.entries_.end() && ib != b.entries_.end()) {
    if (ia->block < ib->block) {
      ++ia;
    } else if (ib->block < ia->block) {
      ++ib;
    } else {
      out.entries_.push_back(
          AgedBlock{ia->block, std::max(ia->age, ib->age)});
      ++ia;
      ++ib;
    }
  }
  return out;
}

AbstractSet AbstractSet::join_may(const AbstractSet& a, const AbstractSet& b) {
  UCP_REQUIRE(a.assoc_ == b.assoc_, "joining sets of different associativity");
  AbstractSet out(a.assoc_);
  auto ia = a.entries_.begin();
  auto ib = b.entries_.begin();
  while (ia != a.entries_.end() || ib != b.entries_.end()) {
    if (ib == b.entries_.end() ||
        (ia != a.entries_.end() && ia->block < ib->block)) {
      out.entries_.push_back(*ia++);
    } else if (ia == a.entries_.end() || ib->block < ia->block) {
      out.entries_.push_back(*ib++);
    } else {
      out.entries_.push_back(
          AgedBlock{ia->block, std::min(ia->age, ib->age)});
      ++ia;
      ++ib;
    }
  }
  return out;
}

bool AbstractSet::join_must_with(const AbstractSet& other) {
  UCP_REQUIRE(assoc_ == other.assoc_,
              "joining sets of different associativity");
  // Intersection with maximal age: the result is a subsequence of the
  // current entries, so it can be built in place with a read cursor ahead
  // of (or at) the write cursor. No allocation, no temporary.
  bool changed = false;
  std::size_t write = 0;
  auto ib = other.entries_.begin();
  for (std::size_t read = 0; read < entries_.size(); ++read) {
    const AgedBlock e = entries_[read];
    while (ib != other.entries_.end() && ib->block < e.block) ++ib;
    if (ib == other.entries_.end() || ib->block != e.block) {
      changed = true;  // entry dropped from the intersection
      continue;
    }
    const std::uint8_t age = std::max(e.age, ib->age);
    if (age != e.age) changed = true;
    entries_[write++] = AgedBlock{e.block, age};
    ++ib;
  }
  entries_.resize(write);
  return changed;
}

bool AbstractSet::join_may_with(const AbstractSet& other) {
  UCP_REQUIRE(assoc_ == other.assoc_,
              "joining sets of different associativity");
  // Fast path: the union adds nothing and lowers no age — detect without
  // writing, since in a converging fixpoint most joins are no-ops.
  bool grows = false;
  {
    auto ia = entries_.begin();
    for (const AgedBlock& eb : other.entries_) {
      while (ia != entries_.end() && ia->block < eb.block) ++ia;
      if (ia == entries_.end() || ia->block != eb.block ||
          eb.age < ia->age) {
        grows = true;
        break;
      }
    }
  }
  if (!grows) return false;

  SmallVector<AgedBlock, kInlineEntries> merged;
  auto ia = entries_.begin();
  auto ib = other.entries_.begin();
  while (ia != entries_.end() || ib != other.entries_.end()) {
    if (ib == other.entries_.end() ||
        (ia != entries_.end() && ia->block < ib->block)) {
      merged.push_back(*ia++);
    } else if (ia == entries_.end() || ib->block < ia->block) {
      merged.push_back(*ib++);
    } else {
      merged.push_back(AgedBlock{ia->block, std::min(ia->age, ib->age)});
      ++ia;
      ++ib;
    }
  }
  entries_ = std::move(merged);
  return true;
}

std::string AbstractSet::to_string() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i) os << ", ";
    os << "s" << entries_[i].block << "@" << int(entries_[i].age);
  }
  os << "}";
  return os.str();
}

AbstractCache::AbstractCache(const cache::CacheConfig& config) {
  config.validate();
  UCP_REQUIRE(config.assoc <= 255, "associativity too large for age domain");
  set_mask_ = config.num_sets() - 1;
  payload_ = std::make_shared<Payload>();
  payload_->sets.assign(config.num_sets(),
                        AbstractSet(static_cast<std::uint8_t>(config.assoc)));
}

const AbstractSet& AbstractCache::set_at(std::uint32_t index) const {
  UCP_REQUIRE(index < payload_->sets.size(), "set index out of range");
  return payload_->sets[index];
}

namespace {

void require_same_geometry(const AbstractCache& a, const AbstractCache& b) {
  UCP_REQUIRE(a.num_sets() == b.num_sets() &&
                  (a.num_sets() == 0 ||
                   a.set_at(0).assoc() == b.set_at(0).assoc()),
              "joining caches of different geometry");
}

}  // namespace

AbstractCache AbstractCache::join_must(const AbstractCache& a,
                                       const AbstractCache& b) {
  require_same_geometry(a, b);
  AbstractCache out = a;
  out.join_must_with(b);
  return out;
}

AbstractCache AbstractCache::join_may(const AbstractCache& a,
                                      const AbstractCache& b) {
  require_same_geometry(a, b);
  AbstractCache out = a;
  out.join_may_with(b);
  return out;
}

bool AbstractCache::join_must_with(const AbstractCache& other) {
  require_same_geometry(*this, other);
  if (payload_ == other.payload_) return false;  // join(x, x) = x
  detach();
  // detach() copies when shared, so `other` can never alias payload_ here.
  bool changed = false;
  for (std::size_t i = 0; i < payload_->sets.size(); ++i)
    changed |= payload_->sets[i].join_must_with(other.payload_->sets[i]);
  return changed;
}

bool AbstractCache::join_may_with(const AbstractCache& other) {
  require_same_geometry(*this, other);
  if (payload_ == other.payload_) return false;  // join(x, x) = x
  detach();
  bool changed = false;
  for (std::size_t i = 0; i < payload_->sets.size(); ++i)
    changed |= payload_->sets[i].join_may_with(other.payload_->sets[i]);
  return changed;
}

std::uint64_t AbstractCache::content_hash() const {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const AbstractSet& s : payload_->sets) {
    mix(s.size() + 0x9e3779b97f4a7c15ull);
    for (const AgedBlock& e : s.entries()) {
      mix(e.block);
      mix(e.age);
    }
  }
  return h;
}

std::string AbstractCache::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < payload_->sets.size(); ++i) {
    if (payload_->sets[i].size() == 0) continue;
    os << "set" << i << " " << payload_->sets[i].to_string() << "\n";
  }
  return os.str();
}

}  // namespace ucp::analysis
