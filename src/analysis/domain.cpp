#include "analysis/domain.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace ucp::analysis {

int AbstractSet::age_of(MemBlockId block) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), block,
      [](const AgedBlock& e, MemBlockId b) { return e.block < b; });
  if (it != entries_.end() && it->block == block) return it->age;
  return -1;
}

void AbstractSet::insert_at_zero_aging(MemBlockId block, int old_age,
                                       bool may_domain) {
  // Blocks with age strictly below the threshold are pushed one step older;
  // in the may domain blocks sharing the accessed block's age move too.
  const int threshold =
      old_age < 0 ? assoc_ : (may_domain ? old_age + 1 : old_age);

  for (AgedBlock& e : entries_) {
    if (e.block == block) continue;
    if (e.age < threshold) ++e.age;
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const AgedBlock& e) {
                                  return e.block != block &&
                                         e.age >= assoc_;
                                }),
                 entries_.end());

  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), block,
      [](const AgedBlock& e, MemBlockId b) { return e.block < b; });
  if (it != entries_.end() && it->block == block) {
    it->age = 0;
  } else {
    entries_.insert(it, AgedBlock{block, 0});
  }
}

void AbstractSet::update_must(MemBlockId block) {
  insert_at_zero_aging(block, age_of(block), /*may_domain=*/false);
}

void AbstractSet::update_may(MemBlockId block) {
  insert_at_zero_aging(block, age_of(block), /*may_domain=*/true);
}

AbstractSet AbstractSet::join_must(const AbstractSet& a, const AbstractSet& b) {
  UCP_REQUIRE(a.assoc_ == b.assoc_, "joining sets of different associativity");
  AbstractSet out(a.assoc_);
  auto ia = a.entries_.begin();
  auto ib = b.entries_.begin();
  while (ia != a.entries_.end() && ib != b.entries_.end()) {
    if (ia->block < ib->block) {
      ++ia;
    } else if (ib->block < ia->block) {
      ++ib;
    } else {
      out.entries_.push_back(
          AgedBlock{ia->block, std::max(ia->age, ib->age)});
      ++ia;
      ++ib;
    }
  }
  return out;
}

AbstractSet AbstractSet::join_may(const AbstractSet& a, const AbstractSet& b) {
  UCP_REQUIRE(a.assoc_ == b.assoc_, "joining sets of different associativity");
  AbstractSet out(a.assoc_);
  auto ia = a.entries_.begin();
  auto ib = b.entries_.begin();
  while (ia != a.entries_.end() || ib != b.entries_.end()) {
    if (ib == b.entries_.end() ||
        (ia != a.entries_.end() && ia->block < ib->block)) {
      out.entries_.push_back(*ia++);
    } else if (ia == a.entries_.end() || ib->block < ia->block) {
      out.entries_.push_back(*ib++);
    } else {
      out.entries_.push_back(
          AgedBlock{ia->block, std::min(ia->age, ib->age)});
      ++ia;
      ++ib;
    }
  }
  return out;
}

std::string AbstractSet::to_string() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i) os << ", ";
    os << "s" << entries_[i].block << "@" << int(entries_[i].age);
  }
  os << "}";
  return os.str();
}

AbstractCache::AbstractCache(const cache::CacheConfig& config)
    : config_(config) {
  config_.validate();
  UCP_REQUIRE(config_.assoc <= 255, "associativity too large for age domain");
  sets_.assign(config_.num_sets(),
               AbstractSet(static_cast<std::uint8_t>(config_.assoc)));
}

AbstractSet& AbstractCache::set_for_block(MemBlockId block) {
  return sets_[config_.set_of(block)];
}

const AbstractSet& AbstractCache::set_for_block(MemBlockId block) const {
  return sets_[config_.set_of(block)];
}

const AbstractSet& AbstractCache::set_at(std::uint32_t index) const {
  UCP_REQUIRE(index < sets_.size(), "set index out of range");
  return sets_[index];
}

AbstractCache AbstractCache::join_must(const AbstractCache& a,
                                       const AbstractCache& b) {
  UCP_REQUIRE(a.config_ == b.config_, "joining caches of different geometry");
  AbstractCache out(a.config_);
  for (std::size_t i = 0; i < out.sets_.size(); ++i)
    out.sets_[i] = AbstractSet::join_must(a.sets_[i], b.sets_[i]);
  return out;
}

AbstractCache AbstractCache::join_may(const AbstractCache& a,
                                      const AbstractCache& b) {
  UCP_REQUIRE(a.config_ == b.config_, "joining caches of different geometry");
  AbstractCache out(a.config_);
  for (std::size_t i = 0; i < out.sets_.size(); ++i)
    out.sets_[i] = AbstractSet::join_may(a.sets_[i], b.sets_[i]);
  return out;
}

std::string AbstractCache::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    if (sets_[i].size() == 0) continue;
    os << "set" << i << " " << sets_[i].to_string() << "\n";
  }
  return os.str();
}

}  // namespace ucp::analysis
