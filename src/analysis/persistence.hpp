#pragma once

#include <cstdint>
#include <vector>

#include "analysis/context_graph.hpp"
#include "cache/config.hpp"
#include "ir/layout.hpp"

namespace ucp::analysis {

/// Persistence analysis — the third classical cache analysis of [8]
/// (alongside must and may): a memory block is *persistent* if, once
/// loaded, it can never be evicted again. A reference to a persistent
/// block is "first-miss": it contributes at most one miss over the whole
/// execution, no matter how often it runs.
///
/// The domain counts DISTINCT conflicting blocks: for each block (per
/// cache set) it tracks the set of other blocks accessed since its last
/// access, with a sticky "may have been evicted" flag once that set
/// reaches `assoc`; joins take the pointwise union. LRU evicts a block
/// only after `assoc` distinct conflicts, so an unset flag at the
/// reference point (or a block never seen at all — the one allowed first
/// miss) proves first-miss. The classical aging formulation (age others
/// up to the accessed block's own age, join by max) under-counts
/// conflicts across joins and is unsound; the soundness fuzzer
/// reproduces that within a few hundred seeds.
///
/// In this codebase VIVU's FIRST/REST peeling already separates cold
/// misses from steady-state behaviour, so persistence mostly confirms the
/// VIVU classification; `persistence_gain` reports how many references
/// only persistence can promote — the precision comparison the analysis
/// literature discusses.
class PersistenceResult {
 public:
  /// True if the fetch of instruction `instr_index` of `node` is
  /// first-miss (persistent block).
  bool persistent(NodeId node, std::size_t instr_index) const;

  std::vector<std::vector<bool>> per_node;  // [node][instr index]
};

PersistenceResult analyze_persistence(const ContextGraph& graph,
                                      const ir::Program& program,
                                      const ir::Layout& layout,
                                      const cache::CacheConfig& config);

/// Number of references that are neither always-hit under must analysis
/// (in any context) nor always-miss, but are persistent — i.e. the extra
/// precision persistence buys on top of the must/may classification.
std::size_t persistence_gain(const ContextGraph& graph,
                             const ir::Program& program,
                             const ir::Layout& layout,
                             const cache::CacheConfig& config);

}  // namespace ucp::analysis
