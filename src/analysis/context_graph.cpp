#include "analysis/context_graph.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace ucp::analysis {

std::string context_to_string(const Context& ctx) {
  if (ctx.empty()) return "[]";
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    if (i) os << ",";
    os << "L" << ctx[i].header << (ctx[i].rest ? ".rest" : ".first");
  }
  os << "]";
  return os.str();
}

ContextGraph::ContextGraph(const ir::Program& program) : program_(&program) {
  loops_ = ir::loops_outermost_first(program);
  for (std::size_t i = 0; i < loops_.size(); ++i)
    loop_by_header_[loops_[i].header] = i;

  nest_chain_.assign(program.num_blocks(), {});
  // loops_ is ordered outermost-first, so appending containing loops in
  // order yields the outer->inner chain.
  for (const ir::NaturalLoop& loop : loops_) {
    for (ir::BlockId b : loop.blocks) nest_chain_[b].push_back(loop.header);
  }

  build();
  compute_topo_order();
  compute_sccs();
}

NodeId ContextGraph::intern(ir::BlockId block, const Context& ctx) {
  const auto key = std::make_pair(block, ctx);
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(CgNode{block, ctx});
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  index_.emplace(key, id);
  return id;
}

void ContextGraph::build() {
  const ir::Program& p = *program_;
  UCP_REQUIRE(p.entry() != ir::kInvalidBlock, "program has no entry");
  UCP_REQUIRE(nest_chain_[p.entry()].empty(),
              "entry block must not be inside a loop");

  entry_ = intern(p.entry(), {});
  std::vector<NodeId> work{entry_};
  std::vector<bool> expanded;

  auto add_edge = [&](NodeId from, NodeId to, bool back) {
    const auto idx = static_cast<std::uint32_t>(edges_.size());
    edges_.push_back(CgEdge{from, to, back});
    out_edges_[from].push_back(idx);
    in_edges_[to].push_back(idx);
  };

  while (!work.empty()) {
    const NodeId nid = work.back();
    work.pop_back();
    if (nid < expanded.size() && expanded[nid]) continue;
    if (nid >= expanded.size()) expanded.resize(nodes_.size(), false);
    if (expanded[nid]) continue;
    expanded[nid] = true;

    // Copy, not reference: intern() may reallocate nodes_.
    const CgNode node = nodes_[nid];
    const ir::BasicBlock& bb = p.block(node.block);
    if (!bb.instrs.empty() && bb.instrs.back().op == ir::Opcode::kHalt) {
      exits_.push_back(nid);
      continue;
    }

    for (ir::BlockId succ : bb.succs) {
      const auto& chain_from = nest_chain_[node.block];
      const auto& chain_to = nest_chain_[succ];

      const bool is_back_edge =
          loop_by_header_.count(succ) != 0 &&
          loops_[loop_by_header_.at(succ)].contains(node.block);

      // Common prefix of the two nest chains keeps its flags.
      Context next_ctx;
      std::size_t common = 0;
      while (common < chain_from.size() && common < chain_to.size() &&
             chain_from[common] == chain_to[common]) {
        next_ctx.push_back(node.ctx[common]);
        ++common;
      }
      // Newly entered loops start in FIRST context.
      for (std::size_t i = common; i < chain_to.size(); ++i)
        next_ctx.push_back(ContextEntry{chain_to[i], false});

      bool skip = false;
      bool rest_to_rest = false;
      if (is_back_edge) {
        // The back edge's target loop is in the common prefix (the header
        // belongs to its own loop); flip its entry to REST.
        UCP_CHECK(!next_ctx.empty());
        std::size_t li = next_ctx.size();
        for (std::size_t i = 0; i < next_ctx.size(); ++i) {
          if (next_ctx[i].header == succ) li = i;
        }
        UCP_CHECK_MSG(li < next_ctx.size(),
                      "back edge target not in successor context");
        const std::uint32_t bound = p.loop_bound(succ);
        const bool from_rest = node.ctx[li].rest;
        // A header executing at most `bound` times per entry reaches REST
        // only if bound >= 2, and REST re-executes only if bound >= 3.
        if (!from_rest && bound < 2) skip = true;
        if (from_rest && bound < 3) skip = true;
        rest_to_rest = from_rest;
        next_ctx[li].rest = true;
        // Inner contexts (loops inside the target loop) were already cut:
        // the successor is the header, whose chain ends at its own loop.
      }
      if (skip) continue;

      const NodeId to = intern(succ, next_ctx);
      if (to >= expanded.size() || !expanded[to]) work.push_back(to);
      add_edge(nid, to, rest_to_rest);
    }
  }

  // Enumerate loop instances: group header nodes by (header, parent ctx).
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const CgNode& node = nodes_[id];
    if (loop_by_header_.count(node.block) == 0) continue;
    UCP_CHECK(!node.ctx.empty());
    if (node.ctx.back().header != node.block) continue;  // not its own header
    if (node.ctx.back().rest) continue;                  // handled via FIRST
    LoopInstance inst;
    inst.header = node.block;
    inst.parent_ctx = Context(node.ctx.begin(), node.ctx.end() - 1);
    inst.first_node = id;
    inst.bound = program_->loop_bound(node.block);
    Context rest_ctx = node.ctx;
    rest_ctx.back().rest = true;
    const auto it = index_.find(std::make_pair(node.block, rest_ctx));
    if (it != index_.end()) inst.rest_node = it->second;
    loop_instances_.push_back(std::move(inst));
  }
}

void ContextGraph::compute_topo_order() {
  // Kahn's algorithm ignoring back edges.
  std::vector<std::uint32_t> in_degree(nodes_.size(), 0);
  for (const CgEdge& e : edges_) {
    if (!e.back) ++in_degree[e.to];
  }
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id)
    if (in_degree[id] == 0) ready.push_back(id);

  topo_.clear();
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    topo_.push_back(id);
    for (std::uint32_t ei : out_edges_[id]) {
      const CgEdge& e = edges_[ei];
      if (e.back) continue;
      if (--in_degree[e.to] == 0) ready.push_back(e.to);
    }
  }
  UCP_CHECK_MSG(topo_.size() == nodes_.size(),
                "context graph is cyclic beyond REST back edges");
  topo_pos_.assign(nodes_.size(), 0);
  for (std::uint32_t pos = 0; pos < topo_.size(); ++pos)
    topo_pos_[topo_[pos]] = pos;
}

void ContextGraph::compute_sccs() {
  // Iterative Tarjan over the full edge set (back edges included). Tarjan
  // emits SCCs in reverse topological order of the condensation, so
  // reversing the emission order numbers them source-to-sink — the order
  // the sparse fixpoint consumes. Within an SCC, members are sorted by
  // ACFG topological position: intra-SCC forward edges respect topo_, so
  // one sorted pass per local iteration converges fastest.
  const std::size_t n = nodes_.size();
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<NodeId> stack;
  std::uint32_t next_index = 0;
  std::vector<std::vector<NodeId>> comps;  // Tarjan emission order

  struct Frame {
    NodeId v;
    std::uint32_t edge;  ///< next out-edge slot to explore
  };
  std::vector<Frame> dfs;
  scc_id_.assign(n, 0);

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back(Frame{root, 0});
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto& outs = out_edges_[f.v];
      if (f.edge < outs.size()) {
        const NodeId w = edges_[outs[f.edge++]].to;
        if (index[w] == kUnvisited) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          dfs.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        const NodeId v = f.v;
        if (low[v] == index[v]) {
          comps.emplace_back();
          NodeId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            comps.back().push_back(w);
          } while (w != v);
        }
        dfs.pop_back();
        if (!dfs.empty()) low[dfs.back().v] = std::min(low[dfs.back().v], low[v]);
      }
    }
  }

  scc_count_ = static_cast<std::uint32_t>(comps.size());
  scc_order_.clear();
  scc_order_.reserve(n);
  scc_begin_.assign(scc_count_ + 1, 0);
  scc_trivial_.assign(scc_count_, 1);
  for (std::uint32_t s = 0; s < scc_count_; ++s) {
    std::vector<NodeId>& comp = comps[scc_count_ - 1 - s];  // reversed emission
    std::sort(comp.begin(), comp.end(), [&](NodeId a, NodeId b) {
      return topo_pos_[a] < topo_pos_[b];
    });
    scc_begin_[s] = static_cast<std::uint32_t>(scc_order_.size());
    for (NodeId id : comp) {
      scc_id_[id] = s;
      scc_order_.push_back(id);
    }
    if (comp.size() > 1) scc_trivial_[s] = 0;
  }
  scc_begin_[scc_count_] = static_cast<std::uint32_t>(scc_order_.size());
  for (const CgEdge& e : edges_) {
    // Self edges keep a singleton SCC non-trivial (it must still iterate).
    if (e.from == e.to) scc_trivial_[scc_id_[e.from]] = 0;
    UCP_CHECK_MSG(scc_id_[e.from] <= scc_id_[e.to],
                  "SCC numbering is not a condensation topological order");
  }
}

const CgNode& ContextGraph::node(NodeId id) const {
  UCP_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const std::vector<std::uint32_t>& ContextGraph::out_edges(NodeId id) const {
  UCP_REQUIRE(id < out_edges_.size(), "node id out of range");
  return out_edges_[id];
}

const std::vector<std::uint32_t>& ContextGraph::in_edges(NodeId id) const {
  UCP_REQUIRE(id < in_edges_.size(), "node id out of range");
  return in_edges_[id];
}

std::string ContextGraph::to_string() const {
  std::ostringstream os;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    os << "n" << id << " = bb" << nodes_[id].block << " "
       << context_to_string(nodes_[id].ctx) << " ->";
    for (std::uint32_t ei : out_edges_[id]) {
      os << " n" << edges_[ei].to;
      if (edges_[ei].back) os << "(back)";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ucp::analysis
