#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace ucp::ir {

/// What a verifier finding is about. Every code names one structural rule;
/// the fuzz shrinker and triage tooling dispatch on it, so codes are stable
/// identifiers, not presentation details.
enum class VerifyCode : std::uint8_t {
  kNoEntry,              ///< program has no entry block
  kNoBlocks,             ///< program has no blocks at all
  kDuplicateInstrId,     ///< one instruction id appears twice
  kEmptyBlock,           ///< basic block with no instructions
  kMidBlockTerminator,   ///< terminator before the last instruction
  kBadDestRegister,      ///< rd out of range
  kBadSourceRegister,    ///< rs1/rs2 out of range
  kBadPrefetchTarget,    ///< pf_target invalid or never allocated
  kDanglingPrefetchTarget,  ///< pf_target refers to a removed instruction
  kBranchArity,          ///< branch terminator without exactly 2 successors
  kJumpArity,            ///< jump terminator without exactly 1 successor
  kHaltArity,            ///< halt terminator with successors
  kFallthroughArity,     ///< fallthrough block without exactly 1 successor
  kSuccessorOutOfRange,  ///< successor block id does not exist
  kNoHalt,               ///< no halt instruction anywhere
  kMissingLoopBound,     ///< natural-loop header without a flow fact
  kLoopAnalysisFailed,   ///< CFG too irregular for loop detection
};

const char* verify_code_name(VerifyCode code);

/// One structural problem, locatable: `block`/`instr`/`succ_index` name the
/// offending block, instruction and successor slot when the rule concerns
/// one (kInvalidBlock / kInvalidInstr / -1 otherwise). `message` is the
/// human-readable rendering with the same location baked in.
struct VerifyIssue {
  VerifyCode code = VerifyCode::kNoEntry;
  BlockId block = kInvalidBlock;
  InstrId instr = kInvalidInstr;
  std::int32_t succ_index = -1;
  std::string message;
};

/// Structural well-formedness checks a program must pass before any
/// analysis, simulation, or optimization is run:
///  - an entry block exists and every block is non-empty;
///  - terminators and successor lists agree (branch: 2, jump/fallthrough: 1,
///    halt: 0) and no terminator appears mid-block;
///  - at least one halt is reachable;
///  - register indices are in range;
///  - every natural-loop header carries a loop bound (flow fact);
///  - prefetch targets refer to existing instructions;
///  - the CFG is reducible (every retreating edge targets a dominator).
/// Returns the issues found (empty = valid), each naming the offending
/// block/instruction/edge.
std::vector<VerifyIssue> verify_issues(const Program& program);

/// Message-only view of `verify_issues` (legacy interface).
std::vector<std::string> verify(const Program& program);

/// Throws InvalidArgument listing all problems if `verify` finds any.
void verify_or_throw(const Program& program);

}  // namespace ucp::ir
