#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace ucp::ir {

/// Structural well-formedness checks a program must pass before any
/// analysis, simulation, or optimization is run:
///  - an entry block exists and every block is non-empty;
///  - terminators and successor lists agree (branch: 2, jump/fallthrough: 1,
///    halt: 0) and no terminator appears mid-block;
///  - at least one halt is reachable;
///  - register indices are in range;
///  - every natural-loop header carries a loop bound (flow fact);
///  - prefetch targets refer to existing instructions;
///  - the CFG is reducible (every retreating edge targets a dominator).
/// Returns the list of problems found (empty = valid).
std::vector<std::string> verify(const Program& program);

/// Throws InvalidArgument listing all problems if `verify` finds any.
void verify_or_throw(const Program& program);

}  // namespace ucp::ir
