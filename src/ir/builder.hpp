#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace ucp::ir {

/// Register handle for the builder API (plain index, strongly suggested via
/// the `R(n)` helper for readability in the suite sources).
struct Reg {
  std::uint8_t index = 0;
};
inline Reg R(std::uint8_t index) { return Reg{index}; }

/// Structured-programming front end over `Program`. Emits instructions into
/// a "current block" and provides `if`/`for`/`while` combinators that build
/// well-formed reducible CFGs with loop bounds attached — exactly the shape
/// the Mälardalen C sources compile to.
///
/// Typical use (see src/suite for 37 real kernels):
///
///   IrBuilder b("cnt");
///   b.movi(R(1), 0);
///   b.for_range(R(0), 0, 10, [&] {
///     b.load(R(2), R(0), 100);
///     b.add(R(1), R(1), R(2));
///   });
///   b.halt();
///   Program p = b.take();
class IrBuilder {
 public:
  explicit IrBuilder(std::string name);

  // --- straight-line emission ---------------------------------------------
  void movi(Reg rd, std::int64_t imm);
  void mov(Reg rd, Reg rs);
  void add(Reg rd, Reg a, Reg b);
  void addi(Reg rd, Reg a, std::int64_t imm);
  void sub(Reg rd, Reg a, Reg b);
  void subi(Reg rd, Reg a, std::int64_t imm) { addi(rd, a, -imm); }
  void mul(Reg rd, Reg a, Reg b);
  void div(Reg rd, Reg a, Reg b);
  void rem(Reg rd, Reg a, Reg b);
  void and_(Reg rd, Reg a, Reg b);
  void or_(Reg rd, Reg a, Reg b);
  void xor_(Reg rd, Reg a, Reg b);
  void shl(Reg rd, Reg a, Reg b);
  void shr(Reg rd, Reg a, Reg b);
  void sar(Reg rd, Reg a, Reg b);
  void load(Reg rd, Reg base, std::int64_t offset);
  void store(Reg base, std::int64_t offset, Reg value);
  void nop();
  /// Emits `count` nops — used by the suite to give kernels realistic code
  /// footprints (standing in for address computations, spills, etc.).
  void nops(std::size_t count);
  void halt();

  // --- structured control flow --------------------------------------------
  using Body = std::function<void()>;

  /// if (a cond b) { then_body() }
  void if_then(Cond cond, Reg a, Reg b, const Body& then_body);
  /// if (a cond b) { then_body() } else { else_body() }
  void if_then_else(Cond cond, Reg a, Reg b, const Body& then_body,
                    const Body& else_body);

  /// for (counter = start; counter < limit; ++counter) body().
  /// The loop bound (max body executions) is `limit - start`.
  void for_range(Reg counter, std::int64_t start, std::int64_t limit,
                 const Body& body);

  /// for (counter = start; counter < limit_reg; ++counter) body(), with an
  /// explicit worst-case trip count `bound` (limit is data-dependent).
  void for_range_reg(Reg counter, std::int64_t start, Reg limit_reg,
                     std::uint32_t bound, const Body& body);

  /// for (counter = start_reg; counter < limit_reg; ++counter) body(), both
  /// ends data-dependent; `bound` is the worst-case trip count.
  void for_range_rr(Reg counter, Reg start_reg, Reg limit_reg,
                    std::uint32_t bound, const Body& body);

  /// Down-counting loop: for (counter = start; counter > limit; --counter).
  void for_down(Reg counter, std::int64_t start, std::int64_t limit,
                const Body& body);

  /// General while loop. `condition` emits code computing the loop condition
  /// and returns the branch spec meaning "continue looping".
  struct LoopCond {
    Cond cond;
    Reg a;
    Reg b;
  };
  void while_loop(std::uint32_t bound,
                  const std::function<LoopCond()>& condition,
                  const Body& body);

  /// do { body } while (a cond b), with worst-case `bound` body executions.
  void do_while(std::uint32_t bound, const Body& body, Cond cond, Reg a,
                Reg b);

  /// Breaks out of the innermost loop currently being built. Terminates the
  /// current block; code emitted after a break in the same body is rejected.
  void break_loop();

  /// Dispatch on `selector` against constant `cases[i].first`, running
  /// `cases[i].second`; `default_body` (may be null) otherwise. Lowered as a
  /// compare cascade (the shape GCC emits for sparse switches).
  void switch_on(
      Reg selector,
      const std::vector<std::pair<std::int64_t, Body>>& cases,
      const Body& default_body);

  // --- data ----------------------------------------------------------------
  void set_data(std::vector<std::int64_t> words);

  /// Finishes construction, runs the verifier, and returns the program.
  Program take();

  /// Identifier of the last emitted instruction (handy in tests).
  InstrId last_instr() const { return last_instr_; }
  /// Current insertion block (for white-box tests).
  BlockId current_block() const { return current_; }

 private:
  BlockId new_block(const std::string& label);
  /// Ends the current block with an unconditional jump to `target`.
  void jump(BlockId target);
  /// Ends the current block without a jump; it falls through to `target`.
  void fallthrough(BlockId target);
  /// Ends the current block with a conditional branch. `cond` compares
  /// register `a` against register `b` or, if `rhs_imm` is set, against it.
  void branch(Cond cond, Reg a, Reg b, BlockId taken, BlockId not_taken);
  void branch_imm(Cond cond, Reg a, std::int64_t imm, BlockId taken,
                  BlockId not_taken);
  void emit(Instruction in);
  void ensure_open() const;

  Program program_;
  BlockId current_ = kInvalidBlock;
  bool current_terminated_ = false;
  InstrId last_instr_ = kInvalidInstr;
  std::uint32_t label_counter_ = 0;
  /// One frame per open loop: blocks whose pending break-jump needs its
  /// successor patched to the loop exit once the exit block exists.
  std::vector<std::vector<BlockId>> break_frames_;
  bool taken_ = false;
};

}  // namespace ucp::ir
