#include "ir/program.hpp"

#include <algorithm>
#include <sstream>

namespace ucp::ir {

BlockId Program::add_block(std::string label) {
  const auto id = static_cast<BlockId>(blocks_.size());
  BasicBlock bb;
  bb.id = id;
  bb.label = std::move(label);
  blocks_.push_back(std::move(bb));
  return id;
}

BasicBlock& Program::block(BlockId id) {
  UCP_REQUIRE(id < blocks_.size(), "block id out of range");
  return blocks_[id];
}

const BasicBlock& Program::block(BlockId id) const {
  UCP_REQUIRE(id < blocks_.size(), "block id out of range");
  return blocks_[id];
}

void Program::set_entry(BlockId id) {
  UCP_REQUIRE(id < blocks_.size(), "entry block id out of range");
  entry_ = id;
}

InstrId Program::append(BlockId bb, Instruction instr) {
  return insert(bb, block(bb).instrs.size(), instr);
}

InstrId Program::insert(BlockId bb, std::size_t pos, Instruction instr) {
  BasicBlock& b = block(bb);
  UCP_REQUIRE(pos <= b.instrs.size(), "insert position out of range");
  instr.id = next_instr_id_++;
  b.instrs.insert(b.instrs.begin() + static_cast<std::ptrdiff_t>(pos), instr);
  return instr.id;
}

void Program::erase(BlockId bb, std::size_t pos) {
  BasicBlock& b = block(bb);
  UCP_REQUIRE(pos < b.instrs.size(), "erase position out of range");
  b.instrs.erase(b.instrs.begin() + static_cast<std::ptrdiff_t>(pos));
}

std::size_t Program::instruction_count() const {
  std::size_t n = 0;
  for (const BasicBlock& bb : blocks_) n += bb.instrs.size();
  return n;
}

std::size_t Program::prefetch_count() const {
  std::size_t n = 0;
  for (const BasicBlock& bb : blocks_)
    n += static_cast<std::size_t>(
        std::count_if(bb.instrs.begin(), bb.instrs.end(),
                      [](const Instruction& i) { return i.is_prefetch(); }));
  return n;
}

Program::InstrLocation Program::locate(InstrId id) const {
  for (const BasicBlock& bb : blocks_) {
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      if (bb.instrs[i].id == id) return InstrLocation{bb.id, i};
    }
  }
  UCP_REQUIRE(false, "instruction id not found in program");
  return {};
}

void Program::set_loop_bound(BlockId header, std::uint32_t bound) {
  UCP_REQUIRE(header < blocks_.size(), "loop header out of range");
  UCP_REQUIRE(bound > 0, "loop bound must be positive");
  loop_bounds_[header] = bound;
}

bool Program::has_loop_bound(BlockId header) const {
  return loop_bounds_.count(header) != 0;
}

std::uint32_t Program::loop_bound(BlockId header) const {
  const auto it = loop_bounds_.find(header);
  UCP_REQUIRE(it != loop_bounds_.end(), "no loop bound for this header");
  return it->second;
}

std::vector<std::vector<BlockId>> Program::predecessors() const {
  std::vector<std::vector<BlockId>> preds(blocks_.size());
  for (const BasicBlock& bb : blocks_) {
    for (BlockId s : bb.succs) {
      UCP_CHECK(s < blocks_.size());
      preds[s].push_back(bb.id);
    }
  }
  return preds;
}

std::vector<BlockId> Program::reverse_post_order() const {
  UCP_REQUIRE(entry_ != kInvalidBlock, "program has no entry block");
  std::vector<BlockId> post;
  post.reserve(blocks_.size());
  std::vector<std::uint8_t> state(blocks_.size(), 0);  // 0=new 1=open 2=done
  // Iterative DFS to avoid deep recursion on long CFGs.
  struct Frame {
    BlockId bb;
    std::size_t next_succ;
  };
  std::vector<Frame> stack;
  stack.push_back({entry_, 0});
  state[entry_] = 1;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const BasicBlock& bb = blocks_[f.bb];
    if (f.next_succ < bb.succs.size()) {
      const BlockId s = bb.succs[f.next_succ++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.push_back({s, 0});
      }
    } else {
      state[f.bb] = 2;
      post.push_back(f.bb);
      stack.pop_back();
    }
  }
  std::reverse(post.begin(), post.end());
  return post;
}

std::string Program::to_string() const {
  std::ostringstream os;
  os << "program " << name_ << " (entry " << entry_ << ")\n";
  for (const BasicBlock& bb : blocks_) {
    os << "bb" << bb.id << " [" << bb.label << "]";
    if (has_loop_bound(bb.id)) os << "  ; loop bound " << loop_bound(bb.id);
    os << "\n";
    for (const Instruction& in : bb.instrs) {
      os << "  #" << in.id << "  " << opcode_name(in.op);
      switch (in.op) {
        case Opcode::kMovImm:
          os << " r" << int(in.rd) << ", " << in.imm;
          break;
        case Opcode::kMov:
          os << " r" << int(in.rd) << ", r" << int(in.rs1);
          break;
        case Opcode::kAddImm:
          os << " r" << int(in.rd) << ", r" << int(in.rs1) << ", " << in.imm;
          break;
        case Opcode::kLoad:
          os << " r" << int(in.rd) << ", [r" << int(in.rs1) << " + " << in.imm
             << "]";
          break;
        case Opcode::kStore:
          os << " [r" << int(in.rs1) << " + " << in.imm << "], r"
             << int(in.rs2);
          break;
        case Opcode::kBranch:
          os << "." << cond_name(in.cond) << " r" << int(in.rs1) << ", r"
             << int(in.rs2);
          break;
        case Opcode::kPrefetch:
          os << " @instr#" << in.pf_target;
          break;
        case Opcode::kJump:
        case Opcode::kHalt:
        case Opcode::kNop:
          break;
        default:
          os << " r" << int(in.rd) << ", r" << int(in.rs1) << ", r"
             << int(in.rs2);
          break;
      }
      os << "\n";
    }
    if (!bb.succs.empty()) {
      os << "  -> ";
      for (std::size_t i = 0; i < bb.succs.size(); ++i) {
        if (i) os << ", ";
        os << "bb" << bb.succs[i];
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace ucp::ir
