#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.hpp"

namespace ucp::ir {

/// Index of a memory block in instruction memory (address / block_bytes).
using MemBlockId = std::uint32_t;

/// Assigns concrete instruction-memory addresses to every instruction of a
/// program (blocks laid out contiguously in block-id order, `kInstrBytes`
/// per instruction) and maps addresses to cache memory blocks of a given
/// block size.
///
/// Inserting a prefetch and re-running `Layout` reproduces exactly the
/// relocation effect the paper's `rcost` term accounts for: every downstream
/// instruction shifts by 4 bytes and may change memory block.
class Layout {
 public:
  /// `block_bytes` is the cache block (line) size; must be a power of two
  /// and a multiple of kInstrBytes.
  Layout(const Program& program, std::uint32_t block_bytes,
         std::uint32_t base_address = 0);

  std::uint32_t block_bytes() const { return block_bytes_; }
  std::uint32_t base_address() const { return base_address_; }
  /// Total code size in bytes.
  std::uint32_t code_bytes() const { return code_bytes_; }

  bool has_address(InstrId id) const {
    return id < addresses_.size() && addresses_[id] != kNoAddress;
  }
  std::uint32_t address(InstrId id) const;
  MemBlockId mem_block(InstrId id) const {
    return address(id) / block_bytes_;
  }
  MemBlockId block_of_address(std::uint32_t addr) const {
    return addr / block_bytes_;
  }

  /// Address of the first instruction of a basic block.
  std::uint32_t block_start_address(BlockId bb) const;

  /// Number of distinct instruction-memory blocks the program spans.
  std::uint32_t num_mem_blocks() const;
  /// First memory block used by the program.
  MemBlockId first_mem_block() const { return base_address_ / block_bytes_; }

 private:
  static constexpr std::uint32_t kNoAddress = 0xffffffffu;

  std::uint32_t block_bytes_;
  std::uint32_t base_address_;
  std::uint32_t code_bytes_ = 0;
  std::vector<std::uint32_t> addresses_;        // indexed by InstrId
  std::vector<std::uint32_t> block_start_;      // indexed by BlockId
};

}  // namespace ucp::ir
