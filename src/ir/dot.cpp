#include "ir/dot.hpp"

#include <sstream>

namespace ucp::ir {

std::string to_dot(const Program& program) {
  std::ostringstream os;
  os << "digraph \"" << program.name() << "\" {\n";
  os << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const BasicBlock& bb : program.blocks()) {
    os << "  bb" << bb.id << " [label=\"bb" << bb.id << " " << bb.label
       << "\\n" << bb.instrs.size() << " instrs";
    if (program.has_loop_bound(bb.id))
      os << "\\nbound " << program.loop_bound(bb.id);
    os << "\"";
    if (bb.id == program.entry()) os << ", style=bold";
    os << "];\n";
    const bool branchy =
        !bb.instrs.empty() && is_branch(bb.instrs.back().op);
    for (std::size_t i = 0; i < bb.succs.size(); ++i) {
      os << "  bb" << bb.id << " -> bb" << bb.succs[i];
      if (branchy) os << " [label=\"" << (i == 0 ? "T" : "F") << "\"]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ucp::ir
