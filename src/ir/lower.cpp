#include "ir/lower.hpp"

#include <cstdlib>

#include "support/check.hpp"

namespace ucp::ir {

Program lower(const Program& input) {
  Program out(input.name());

  // Clone the block skeleton first so successor ids stay valid.
  for (const BasicBlock& bb : input.blocks()) {
    const BlockId id = out.add_block(bb.label);
    UCP_CHECK(id == bb.id);
  }
  out.set_entry(input.entry());
  for (const auto& [header, bound] : input.loop_bounds())
    out.set_loop_bound(header, bound);
  out.set_data(input.data());

  const auto scratch = kScratchReg;
  for (const BasicBlock& bb : input.blocks()) {
    out.block(bb.id).succs = bb.succs;
    for (const Instruction& in : bb.instrs) {
      UCP_REQUIRE(!in.is_prefetch(), "lower() runs before prefetch insertion");
      UCP_REQUIRE(in.rd < kScratchReg && in.rs1 < kScratchReg &&
                      in.rs2 < kScratchReg,
                  "r30/r31 are reserved for the lowering pass");

      Instruction copy = in;
      copy.id = kInvalidInstr;  // ids reassigned by append
      switch (in.op) {
        case Opcode::kLoad:
        case Opcode::kStore: {
          // Address generation: the data segment base lives behind a frame/
          // global pointer on the paper's ARMv7 target, so every access
          // spends an ALU op forming the effective address.
          Instruction lea;
          lea.op = Opcode::kAddImm;
          lea.rd = scratch;
          lea.rs1 = in.rs1;
          lea.imm = in.imm;
          out.append(bb.id, lea);
          copy.rs1 = scratch;
          copy.imm = 0;
          out.append(bb.id, copy);
          break;
        }
        case Opcode::kBranch: {
          // cmp + conditional branch, as on a flag-based ISA.
          Instruction cmp;
          cmp.op = Opcode::kSub;
          cmp.rd = scratch;
          cmp.rs1 = in.rs1;
          cmp.rs2 = in.rs2;
          out.append(bb.id, cmp);
          out.append(bb.id, copy);
          break;
        }
        case Opcode::kBranchImm: {
          // cmp-immediate materialization + compare + branch.
          Instruction mat;
          mat.op = Opcode::kMovImm;
          mat.rd = scratch;
          mat.imm = in.imm;
          out.append(bb.id, mat);
          copy.op = Opcode::kBranch;
          copy.rs2 = scratch;
          copy.imm = 0;
          out.append(bb.id, copy);
          break;
        }
        case Opcode::kDiv:
        case Opcode::kRem: {
          // ARMv7 (pre-UDIV profiles) calls a library divide; model the
          // argument-marshalling and result moves around the operation.
          Instruction marshal;
          marshal.op = Opcode::kMov;
          marshal.rd = scratch;
          marshal.rs1 = in.rs1;
          out.append(bb.id, marshal);
          Instruction marshal2 = marshal;
          marshal2.rs1 = in.rs2;
          out.append(bb.id, marshal2);
          out.append(bb.id, copy);
          Instruction ret;
          ret.op = Opcode::kMov;
          ret.rd = in.rd;
          ret.rs1 = in.rd;
          out.append(bb.id, ret);
          break;
        }
        case Opcode::kMovImm: {
          if (in.imm >= -256 && in.imm <= 255) {
            out.append(bb.id, copy);
            break;
          }
          const std::int64_t low = in.imm & 0xffff;
          const std::int64_t high = in.imm - low;
          // movw/movt-style pair: materialize in two steps.
          if (high != 0) {
            Instruction hi;
            hi.op = Opcode::kMovImm;
            hi.rd = in.rd;
            hi.imm = high;
            out.append(bb.id, hi);
            Instruction lo;
            lo.op = Opcode::kAddImm;
            lo.rd = in.rd;
            lo.rs1 = in.rd;
            lo.imm = low;
            out.append(bb.id, lo);
          } else {
            // Wide-but-low constants: movw plus the rotate/fixup slot.
            out.append(bb.id, copy);
            Instruction fix;
            fix.op = Opcode::kAddImm;
            fix.rd = in.rd;
            fix.rs1 = in.rd;
            fix.imm = 0;
            out.append(bb.id, fix);
          }
          break;
        }
        default:
          out.append(bb.id, copy);
          break;
      }
    }
  }
  return out;
}

}  // namespace ucp::ir
