#pragma once

#include "ir/program.hpp"

namespace ucp::ir {

/// Lowers builder-level IR to the load/store-architecture form a real RISC
/// compiler emits, faithfully inflating the code footprint:
///  - every `load`/`store` gains an address-generation ALU op (effective
///    address formed from the frame/global pointer on the paper's ARMv7
///    target);
///  - `br.cond a, b` becomes compare + branch (flag-based ISA);
///  - `bri.cond rs, imm` becomes constant materialization + compare+branch;
///  - `div`/`rem` gain the marshalling moves around the library divide call
///    (pre-UDIV ARMv7 profiles have no hardware divide);
///  - `movi` of anything beyond an 8-bit immediate becomes a movw/movt pair.
///
/// Register r30 is reserved as the lowering scratch; programs must not use
/// r30/r31 (checked). The pass preserves semantics exactly — a property
/// test runs every suite program in both forms and compares all results.
Program lower(const Program& input);

/// Scratch register reserved for `lower`.
inline constexpr std::uint8_t kScratchReg = 30;

}  // namespace ucp::ir
