#pragma once

#include <cstddef>
#include <string>

#include "ir/program.hpp"
#include "support/status.hpp"

namespace ucp::ir {

/// Canonical line-oriented text form of a Program, used by the fuzz corpus
/// (`tests/corpus/*.ucp`) and by shrink-repro triage. The writer renumbers
/// instruction ids to their file positions (insert/erase leave id gaps that
/// have no semantic meaning) and remaps prefetch targets accordingly, so
/// serialize(parse(text)) == text for any codec output, and two programs
/// with identical structure serialize byte-identically regardless of their
/// id-allocation history.
std::string to_text(const Program& program);

/// Parses codec text back into a Program. Throws InvalidArgument with a
/// line-numbered message on malformed input. Parsing does not run
/// `ir::verify`; corpus loaders verify explicitly so a malformed repro is
/// reported as a corpus problem, not a parse crash.
Program from_text(const std::string& text);

/// Resource ceilings for parsing *untrusted* codec text (a ucpd request, a
/// foreign corpus file). Every limit bounds allocation or work the parser
/// would otherwise perform on attacker-chosen counts — e.g. a `data
/// 99999999999` header must fail the cap, not reserve gigabytes. The
/// defaults accommodate every committed suite/corpus program and the 100x
/// generated scaling programs with an order of magnitude to spare.
struct CodecLimits {
  std::size_t max_bytes = 8u << 20;        ///< whole-input byte cap
  std::size_t max_lines = 300000;          ///< physical line cap
  std::size_t max_blocks = 100000;         ///< basic blocks
  std::size_t max_instructions = 1000000;  ///< instructions, program-wide
  std::size_t max_data_words = 1000000;    ///< data-section words
  std::size_t max_loop_bounds = 100000;    ///< loop_bound headers
  std::size_t max_succs = 64;              ///< successors per block
  std::size_t max_name_bytes = 512;        ///< program/block label length
};

/// Status-channel parser for untrusted input: malformed, truncated,
/// oversized or limit-busting text comes back as a structured
/// kMalformedInput Status with the offending line baked into the detail —
/// never an exception, an abort, or unbounded allocation. `from_text` is
/// this parser with default limits and the error rethrown as
/// InvalidArgument (trusted-caller convenience).
Expected<Program> from_text_checked(const std::string& text,
                                    const CodecLimits& limits = {});

}  // namespace ucp::ir
