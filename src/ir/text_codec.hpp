#pragma once

#include <string>

#include "ir/program.hpp"

namespace ucp::ir {

/// Canonical line-oriented text form of a Program, used by the fuzz corpus
/// (`tests/corpus/*.ucp`) and by shrink-repro triage. The writer renumbers
/// instruction ids to their file positions (insert/erase leave id gaps that
/// have no semantic meaning) and remaps prefetch targets accordingly, so
/// serialize(parse(text)) == text for any codec output, and two programs
/// with identical structure serialize byte-identically regardless of their
/// id-allocation history.
std::string to_text(const Program& program);

/// Parses codec text back into a Program. Throws InvalidArgument with a
/// line-numbered message on malformed input. Parsing does not run
/// `ir::verify`; corpus loaders verify explicitly so a malformed repro is
/// reported as a corpus problem, not a parse crash.
Program from_text(const std::string& text);

}  // namespace ucp::ir
