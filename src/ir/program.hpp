#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "ir/isa.hpp"
#include "support/check.hpp"

namespace ucp::ir {

/// Stable identifier of an instruction within a Program. Ids survive
/// insertions (new instructions get fresh ids), which lets the optimizer
/// refer to prefetch targets independently of code addresses.
using InstrId = std::uint32_t;
inline constexpr InstrId kInvalidInstr = std::numeric_limits<InstrId>::max();

/// Index of a basic block within a Program.
using BlockId = std::uint32_t;
inline constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();

/// One mini-ISA instruction. Fields that an opcode does not use are zero.
struct Instruction {
  InstrId id = kInvalidInstr;
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  Cond cond = Cond::kEq;
  std::int64_t imm = 0;
  /// For kPrefetch: the instruction whose enclosing memory block to prefetch.
  InstrId pf_target = kInvalidInstr;

  bool is_prefetch() const { return op == Opcode::kPrefetch; }
};

/// A maximal straight-line sequence of instructions. The terminator (if any)
/// is the last instruction; blocks without an explicit terminator fall
/// through to succs[0].
struct BasicBlock {
  BlockId id = kInvalidBlock;
  std::string label;
  std::vector<Instruction> instrs;
  /// Successor blocks. kBranch: {taken, not-taken}. kJump/fallthrough: {next}.
  /// kHalt: {}.
  std::vector<BlockId> succs;
};

/// A whole program: its CFG, the initial data-memory image, and the loop
/// bound annotations ("flow facts") that WCET analysis requires.
///
/// Programs are value types; the optimizer copies a program, mutates the
/// copy, and compares analyses of both.
class Program {
 public:
  explicit Program(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- structure -----------------------------------------------------------
  BlockId add_block(std::string label);
  BasicBlock& block(BlockId id);
  const BasicBlock& block(BlockId id) const;
  std::size_t num_blocks() const { return blocks_.size(); }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }

  void set_entry(BlockId id);
  BlockId entry() const { return entry_; }

  /// Appends an instruction to `bb` and assigns it a fresh id.
  InstrId append(BlockId bb, Instruction instr);
  /// Inserts an instruction at position `pos` inside `bb` (before the
  /// instruction currently at `pos`); used for prefetch insertion.
  InstrId insert(BlockId bb, std::size_t pos, Instruction instr);
  /// Removes the instruction at `pos` inside `bb` (used to roll back a
  /// tentatively inserted prefetch). The id is not recycled.
  void erase(BlockId bb, std::size_t pos);

  std::uint32_t num_instr_ids() const { return next_instr_id_; }
  /// Total number of instructions currently in the program.
  std::size_t instruction_count() const;
  /// Number of kPrefetch instructions currently in the program.
  std::size_t prefetch_count() const;

  /// Locates an instruction by id. Linear in program size; the analyses use
  /// their own dense side tables instead.
  struct InstrLocation {
    BlockId block = kInvalidBlock;
    std::size_t index = 0;
  };
  InstrLocation locate(InstrId id) const;

  // --- flow facts ----------------------------------------------------------
  /// Declares that the loop headed by `header` executes its body at most
  /// `bound` times per entry to the loop. Required for every loop header.
  void set_loop_bound(BlockId header, std::uint32_t bound);
  bool has_loop_bound(BlockId header) const;
  std::uint32_t loop_bound(BlockId header) const;
  const std::map<BlockId, std::uint32_t>& loop_bounds() const {
    return loop_bounds_;
  }

  // --- data memory ---------------------------------------------------------
  /// Word-addressed initial data image. The interpreter copies it at startup.
  void set_data(std::vector<std::int64_t> words) { data_ = std::move(words); }
  const std::vector<std::int64_t>& data() const { return data_; }

  // --- misc ----------------------------------------------------------------
  /// Predecessor lists derived from succs; recomputed on demand.
  std::vector<std::vector<BlockId>> predecessors() const;
  /// Blocks in reverse post-order from the entry (forward topological-ish
  /// order; loops place headers before bodies).
  std::vector<BlockId> reverse_post_order() const;

  std::string to_string() const;

 private:
  std::string name_;
  std::vector<BasicBlock> blocks_;
  BlockId entry_ = kInvalidBlock;
  InstrId next_instr_id_ = 0;
  std::map<BlockId, std::uint32_t> loop_bounds_;
  std::vector<std::int64_t> data_;
};

}  // namespace ucp::ir
