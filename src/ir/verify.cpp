#include "ir/verify.hpp"

#include <set>
#include <sstream>

#include "ir/dominators.hpp"

namespace ucp::ir {

namespace {

void check_instruction(const Program& program, const BasicBlock& bb,
                       const Instruction& in, bool is_last,
                       std::vector<std::string>& problems) {
  std::ostringstream where;
  where << "bb" << bb.id << " instr#" << in.id << " (" << opcode_name(in.op)
        << ")";

  if (is_terminator(in.op) && !is_last) {
    problems.push_back(where.str() + ": terminator in the middle of a block");
  }
  if (writes_register(in.op) && in.rd >= kNumRegs) {
    problems.push_back(where.str() + ": destination register out of range");
  }
  if (in.rs1 >= kNumRegs || in.rs2 >= kNumRegs) {
    problems.push_back(where.str() + ": source register out of range");
  }
  if (in.op == Opcode::kPrefetch) {
    if (in.pf_target == kInvalidInstr ||
        in.pf_target >= program.num_instr_ids()) {
      problems.push_back(where.str() + ": invalid prefetch target id");
    }
  }
}

}  // namespace

std::vector<std::string> verify(const Program& program) {
  std::vector<std::string> problems;

  if (program.entry() == kInvalidBlock) {
    problems.emplace_back("program has no entry block");
    return problems;
  }
  if (program.num_blocks() == 0) {
    problems.emplace_back("program has no blocks");
    return problems;
  }

  // Collect existing instruction ids for prefetch-target validation.
  std::set<InstrId> ids;
  for (const BasicBlock& bb : program.blocks())
    for (const Instruction& in : bb.instrs) {
      if (!ids.insert(in.id).second) {
        std::ostringstream os;
        os << "duplicate instruction id #" << in.id;
        problems.push_back(os.str());
      }
    }

  bool any_halt = false;
  for (const BasicBlock& bb : program.blocks()) {
    std::ostringstream bb_name;
    bb_name << "bb" << bb.id << " [" << bb.label << "]";

    if (bb.instrs.empty()) {
      problems.push_back(bb_name.str() + ": empty basic block");
      continue;
    }
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      check_instruction(program, bb, bb.instrs[i],
                        i + 1 == bb.instrs.size(), problems);
      if (bb.instrs[i].op == Opcode::kPrefetch &&
          bb.instrs[i].pf_target != kInvalidInstr &&
          ids.find(bb.instrs[i].pf_target) == ids.end()) {
        problems.push_back(bb_name.str() +
                           ": prefetch target refers to a removed instruction");
      }
    }

    const Opcode last = bb.instrs.back().op;
    const std::size_t nsucc = bb.succs.size();
    if (is_branch(last) && nsucc != 2) {
      problems.push_back(bb_name.str() + ": branch needs exactly 2 successors");
    } else if (last == Opcode::kJump && nsucc != 1) {
      problems.push_back(bb_name.str() + ": jump needs exactly 1 successor");
    } else if (last == Opcode::kHalt) {
      any_halt = true;
      if (nsucc != 0)
        problems.push_back(bb_name.str() + ": halt must have no successors");
    } else if (!is_terminator(last) && nsucc != 1) {
      problems.push_back(bb_name.str() +
                         ": fallthrough block needs exactly 1 successor");
    }
    for (BlockId s : bb.succs) {
      if (s >= program.num_blocks())
        problems.push_back(bb_name.str() + ": successor id out of range");
    }
  }
  if (!any_halt) problems.emplace_back("program has no halt instruction");
  if (!problems.empty()) return problems;  // CFG too broken for loop checks

  // Loop bounds: every natural loop header needs a flow fact.
  try {
    for (const NaturalLoop& loop : find_natural_loops(program)) {
      if (!program.has_loop_bound(loop.header)) {
        std::ostringstream os;
        os << "loop headed by bb" << loop.header << " has no loop bound";
        problems.push_back(os.str());
      }
    }
  } catch (const InvalidArgument& e) {
    problems.emplace_back(std::string("loop analysis failed: ") + e.what());
  }
  return problems;
}

void verify_or_throw(const Program& program) {
  const auto problems = verify(program);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "program '" << program.name() << "' failed verification:";
  for (const auto& p : problems) os << "\n  - " << p;
  throw InvalidArgument(os.str());
}

}  // namespace ucp::ir
