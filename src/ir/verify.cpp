#include "ir/verify.hpp"

#include <set>
#include <sstream>

#include "ir/dominators.hpp"

namespace ucp::ir {

const char* verify_code_name(VerifyCode code) {
  switch (code) {
    case VerifyCode::kNoEntry:
      return "no-entry";
    case VerifyCode::kNoBlocks:
      return "no-blocks";
    case VerifyCode::kDuplicateInstrId:
      return "duplicate-instr-id";
    case VerifyCode::kEmptyBlock:
      return "empty-block";
    case VerifyCode::kMidBlockTerminator:
      return "mid-block-terminator";
    case VerifyCode::kBadDestRegister:
      return "bad-dest-register";
    case VerifyCode::kBadSourceRegister:
      return "bad-source-register";
    case VerifyCode::kBadPrefetchTarget:
      return "bad-prefetch-target";
    case VerifyCode::kDanglingPrefetchTarget:
      return "dangling-prefetch-target";
    case VerifyCode::kBranchArity:
      return "branch-arity";
    case VerifyCode::kJumpArity:
      return "jump-arity";
    case VerifyCode::kHaltArity:
      return "halt-arity";
    case VerifyCode::kFallthroughArity:
      return "fallthrough-arity";
    case VerifyCode::kSuccessorOutOfRange:
      return "successor-out-of-range";
    case VerifyCode::kNoHalt:
      return "no-halt";
    case VerifyCode::kMissingLoopBound:
      return "missing-loop-bound";
    case VerifyCode::kLoopAnalysisFailed:
      return "loop-analysis-failed";
  }
  return "unknown";
}

namespace {

/// Collects issues, rendering the "[code] where: what" message once so every
/// consumer (strings, throw, shrinker) sees the same text.
class IssueSink {
 public:
  explicit IssueSink(std::vector<VerifyIssue>& out) : out_(out) {}

  void program_level(VerifyCode code, const std::string& what) {
    push(code, kInvalidBlock, kInvalidInstr, -1, what);
  }
  void at_block(VerifyCode code, const BasicBlock& bb,
                const std::string& what, std::int32_t succ_index = -1) {
    std::ostringstream where;
    where << "bb" << bb.id << " [" << bb.label << "]";
    if (succ_index >= 0) where << " succ#" << succ_index;
    push(code, bb.id, kInvalidInstr, succ_index, where.str() + ": " + what);
  }
  void at_instr(VerifyCode code, const BasicBlock& bb, const Instruction& in,
                const std::string& what) {
    std::ostringstream where;
    where << "bb" << bb.id << " instr#" << in.id << " ("
          << opcode_name(in.op) << ")";
    push(code, bb.id, in.id, -1, where.str() + ": " + what);
  }

 private:
  void push(VerifyCode code, BlockId block, InstrId instr,
            std::int32_t succ_index, const std::string& what) {
    VerifyIssue issue;
    issue.code = code;
    issue.block = block;
    issue.instr = instr;
    issue.succ_index = succ_index;
    issue.message = "[" + std::string(verify_code_name(code)) + "] " + what;
    out_.push_back(std::move(issue));
  }

  std::vector<VerifyIssue>& out_;
};

void check_instruction(const Program& program, const BasicBlock& bb,
                       const Instruction& in, bool is_last, IssueSink& sink) {
  if (is_terminator(in.op) && !is_last) {
    sink.at_instr(VerifyCode::kMidBlockTerminator, bb, in,
                  "terminator in the middle of a block");
  }
  if (writes_register(in.op) && in.rd >= kNumRegs) {
    sink.at_instr(VerifyCode::kBadDestRegister, bb, in,
                  "destination register r" + std::to_string(in.rd) +
                      " out of range");
  }
  if (in.rs1 >= kNumRegs || in.rs2 >= kNumRegs) {
    const std::uint8_t bad = in.rs1 >= kNumRegs ? in.rs1 : in.rs2;
    sink.at_instr(VerifyCode::kBadSourceRegister, bb, in,
                  "source register r" + std::to_string(bad) +
                      " out of range");
  }
  if (in.op == Opcode::kPrefetch) {
    if (in.pf_target == kInvalidInstr ||
        in.pf_target >= program.num_instr_ids()) {
      sink.at_instr(VerifyCode::kBadPrefetchTarget, bb, in,
                    "invalid prefetch target id #" +
                        std::to_string(in.pf_target));
    }
  }
}

}  // namespace

std::vector<VerifyIssue> verify_issues(const Program& program) {
  std::vector<VerifyIssue> issues;
  IssueSink sink(issues);

  if (program.entry() == kInvalidBlock) {
    sink.program_level(VerifyCode::kNoEntry, "program has no entry block");
    return issues;
  }
  if (program.num_blocks() == 0) {
    sink.program_level(VerifyCode::kNoBlocks, "program has no blocks");
    return issues;
  }

  // Collect existing instruction ids for prefetch-target validation.
  std::set<InstrId> ids;
  for (const BasicBlock& bb : program.blocks())
    for (const Instruction& in : bb.instrs) {
      if (!ids.insert(in.id).second) {
        sink.at_instr(VerifyCode::kDuplicateInstrId, bb, in,
                      "duplicate instruction id #" + std::to_string(in.id));
      }
    }

  bool any_halt = false;
  for (const BasicBlock& bb : program.blocks()) {
    if (bb.instrs.empty()) {
      sink.at_block(VerifyCode::kEmptyBlock, bb, "empty basic block");
      continue;
    }
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      check_instruction(program, bb, bb.instrs[i],
                        i + 1 == bb.instrs.size(), sink);
      if (bb.instrs[i].op == Opcode::kPrefetch &&
          bb.instrs[i].pf_target != kInvalidInstr &&
          ids.find(bb.instrs[i].pf_target) == ids.end()) {
        sink.at_instr(VerifyCode::kDanglingPrefetchTarget, bb, bb.instrs[i],
                      "prefetch target #" +
                          std::to_string(bb.instrs[i].pf_target) +
                          " refers to a removed instruction");
      }
    }

    const Opcode last = bb.instrs.back().op;
    const std::size_t nsucc = bb.succs.size();
    if (is_branch(last) && nsucc != 2) {
      sink.at_block(VerifyCode::kBranchArity, bb,
                    "branch needs exactly 2 successors, has " +
                        std::to_string(nsucc));
    } else if (last == Opcode::kJump && nsucc != 1) {
      sink.at_block(VerifyCode::kJumpArity, bb,
                    "jump needs exactly 1 successor, has " +
                        std::to_string(nsucc));
    } else if (last == Opcode::kHalt) {
      any_halt = true;
      if (nsucc != 0)
        sink.at_block(VerifyCode::kHaltArity, bb,
                      "halt must have no successors, has " +
                          std::to_string(nsucc));
    } else if (!is_terminator(last) && nsucc != 1) {
      sink.at_block(VerifyCode::kFallthroughArity, bb,
                    "fallthrough block needs exactly 1 successor, has " +
                        std::to_string(nsucc));
    }
    for (std::size_t s = 0; s < bb.succs.size(); ++s) {
      if (bb.succs[s] >= program.num_blocks())
        sink.at_block(VerifyCode::kSuccessorOutOfRange, bb,
                      "successor bb" + std::to_string(bb.succs[s]) +
                          " out of range",
                      static_cast<std::int32_t>(s));
    }
  }
  if (!any_halt)
    sink.program_level(VerifyCode::kNoHalt,
                       "program has no halt instruction");
  if (!issues.empty()) return issues;  // CFG too broken for loop checks

  // Loop bounds: every natural loop header needs a flow fact.
  try {
    for (const NaturalLoop& loop : find_natural_loops(program)) {
      if (!program.has_loop_bound(loop.header)) {
        sink.at_block(VerifyCode::kMissingLoopBound,
                      program.block(loop.header),
                      "loop headed by bb" + std::to_string(loop.header) +
                          " has no loop bound");
      }
    }
  } catch (const InvalidArgument& e) {
    sink.program_level(VerifyCode::kLoopAnalysisFailed,
                       std::string("loop analysis failed: ") + e.what());
  }
  return issues;
}

std::vector<std::string> verify(const Program& program) {
  std::vector<std::string> problems;
  for (VerifyIssue& issue : verify_issues(program))
    problems.push_back(std::move(issue.message));
  return problems;
}

void verify_or_throw(const Program& program) {
  const auto problems = verify(program);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "program '" << program.name() << "' failed verification:";
  for (const auto& p : problems) os << "\n  - " << p;
  throw InvalidArgument(os.str());
}

}  // namespace ucp::ir
