#include "ir/builder.hpp"

#include "ir/verify.hpp"

namespace ucp::ir {

IrBuilder::IrBuilder(std::string name) : program_(std::move(name)) {
  current_ = new_block("entry");
  program_.set_entry(current_);
}

BlockId IrBuilder::new_block(const std::string& label) {
  return program_.add_block(label + "." + std::to_string(label_counter_++));
}

void IrBuilder::ensure_open() const {
  UCP_REQUIRE(!taken_, "builder already consumed by take()");
  UCP_REQUIRE(!current_terminated_,
              "emitting into a terminated block (code after halt/break?)");
}

void IrBuilder::emit(Instruction in) {
  ensure_open();
  last_instr_ = program_.append(current_, in);
  if (is_terminator(in.op)) current_terminated_ = true;
}

void IrBuilder::movi(Reg rd, std::int64_t imm) {
  Instruction in;
  in.op = Opcode::kMovImm;
  in.rd = rd.index;
  in.imm = imm;
  emit(in);
}

void IrBuilder::mov(Reg rd, Reg rs) {
  Instruction in;
  in.op = Opcode::kMov;
  in.rd = rd.index;
  in.rs1 = rs.index;
  emit(in);
}

namespace {
Instruction make_binop(Opcode op, Reg rd, Reg a, Reg b) {
  Instruction in;
  in.op = op;
  in.rd = rd.index;
  in.rs1 = a.index;
  in.rs2 = b.index;
  return in;
}
}  // namespace

void IrBuilder::add(Reg rd, Reg a, Reg b) {
  emit(make_binop(Opcode::kAdd, rd, a, b));
}
void IrBuilder::sub(Reg rd, Reg a, Reg b) {
  emit(make_binop(Opcode::kSub, rd, a, b));
}
void IrBuilder::mul(Reg rd, Reg a, Reg b) {
  emit(make_binop(Opcode::kMul, rd, a, b));
}
void IrBuilder::div(Reg rd, Reg a, Reg b) {
  emit(make_binop(Opcode::kDiv, rd, a, b));
}
void IrBuilder::rem(Reg rd, Reg a, Reg b) {
  emit(make_binop(Opcode::kRem, rd, a, b));
}
void IrBuilder::and_(Reg rd, Reg a, Reg b) {
  emit(make_binop(Opcode::kAnd, rd, a, b));
}
void IrBuilder::or_(Reg rd, Reg a, Reg b) {
  emit(make_binop(Opcode::kOr, rd, a, b));
}
void IrBuilder::xor_(Reg rd, Reg a, Reg b) {
  emit(make_binop(Opcode::kXor, rd, a, b));
}
void IrBuilder::shl(Reg rd, Reg a, Reg b) {
  emit(make_binop(Opcode::kShl, rd, a, b));
}
void IrBuilder::shr(Reg rd, Reg a, Reg b) {
  emit(make_binop(Opcode::kShr, rd, a, b));
}
void IrBuilder::sar(Reg rd, Reg a, Reg b) {
  emit(make_binop(Opcode::kSar, rd, a, b));
}

void IrBuilder::addi(Reg rd, Reg a, std::int64_t imm) {
  Instruction in;
  in.op = Opcode::kAddImm;
  in.rd = rd.index;
  in.rs1 = a.index;
  in.imm = imm;
  emit(in);
}

void IrBuilder::load(Reg rd, Reg base, std::int64_t offset) {
  Instruction in;
  in.op = Opcode::kLoad;
  in.rd = rd.index;
  in.rs1 = base.index;
  in.imm = offset;
  emit(in);
}

void IrBuilder::store(Reg base, std::int64_t offset, Reg value) {
  Instruction in;
  in.op = Opcode::kStore;
  in.rs1 = base.index;
  in.rs2 = value.index;
  in.imm = offset;
  emit(in);
}

void IrBuilder::nop() {
  Instruction in;
  in.op = Opcode::kNop;
  emit(in);
}

void IrBuilder::nops(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) nop();
}

void IrBuilder::halt() {
  Instruction in;
  in.op = Opcode::kHalt;
  emit(in);
}

void IrBuilder::jump(BlockId target) {
  Instruction in;
  in.op = Opcode::kJump;
  emit(in);
  program_.block(current_).succs = {target};
}

void IrBuilder::fallthrough(BlockId target) {
  ensure_open();
  // Empty blocks are invalid IR; pad with a nop (mirrors compiler-inserted
  // landing pads at empty join points).
  if (program_.block(current_).instrs.empty()) nop();
  program_.block(current_).succs = {target};
  current_terminated_ = true;
}

void IrBuilder::branch(Cond cond, Reg a, Reg b, BlockId taken,
                       BlockId not_taken) {
  Instruction in;
  in.op = Opcode::kBranch;
  in.cond = cond;
  in.rs1 = a.index;
  in.rs2 = b.index;
  emit(in);
  program_.block(current_).succs = {taken, not_taken};
}

void IrBuilder::branch_imm(Cond cond, Reg a, std::int64_t imm, BlockId taken,
                           BlockId not_taken) {
  Instruction in;
  in.op = Opcode::kBranchImm;
  in.cond = cond;
  in.rs1 = a.index;
  in.imm = imm;
  emit(in);
  program_.block(current_).succs = {taken, not_taken};
}

void IrBuilder::if_then(Cond cond, Reg a, Reg b, const Body& then_body) {
  const BlockId then_bb = new_block("then");
  // The join block id must exist before the branch, but we want then-code
  // laid out adjacent to the branch; the join is created after the body.
  // To do that we branch with a placeholder and patch below.
  branch(cond, a, b, then_bb, kInvalidBlock);
  const BlockId branch_bb = current_;

  current_ = then_bb;
  current_terminated_ = false;
  then_body();
  const bool then_terminated = current_terminated_;
  const BlockId then_end = current_;

  const BlockId join = new_block("join");
  program_.block(branch_bb).succs[1] = join;
  if (!then_terminated) {
    current_ = then_end;
    current_terminated_ = false;
    fallthrough(join);
  }
  current_ = join;
  current_terminated_ = false;
}

void IrBuilder::if_then_else(Cond cond, Reg a, Reg b, const Body& then_body,
                             const Body& else_body) {
  const BlockId then_bb = new_block("then");
  branch(cond, a, b, then_bb, kInvalidBlock);
  const BlockId branch_bb = current_;

  current_ = then_bb;
  current_terminated_ = false;
  then_body();
  const bool then_terminated = current_terminated_;
  const BlockId then_end = current_;

  const BlockId else_bb = new_block("else");
  program_.block(branch_bb).succs[1] = else_bb;
  current_ = else_bb;
  current_terminated_ = false;
  else_body();
  const bool else_terminated = current_terminated_;
  const BlockId else_end = current_;

  const BlockId join = new_block("join");
  if (!then_terminated) {
    current_ = then_end;
    current_terminated_ = false;
    jump(join);
    current_terminated_ = true;
  }
  if (!else_terminated) {
    current_ = else_end;
    current_terminated_ = false;
    fallthrough(join);
  }
  current_ = join;
  current_terminated_ = false;
}

void IrBuilder::for_range(Reg counter, std::int64_t start, std::int64_t limit,
                          const Body& body) {
  UCP_REQUIRE(limit > start, "for_range needs at least one iteration");
  movi(counter, start);
  const auto trips = static_cast<std::uint32_t>(limit - start);

  const BlockId header = new_block("for.header");
  fallthrough(header);
  current_ = header;
  current_terminated_ = false;

  const BlockId body_bb = new_block("for.body");
  branch_imm(Cond::kGe, counter, limit, kInvalidBlock, body_bb);
  const BlockId header_end = header;

  break_frames_.emplace_back();
  current_ = body_bb;
  current_terminated_ = false;
  body();
  if (!current_terminated_) {
    addi(counter, counter, 1);
    jump(header);
  }

  const BlockId exit_bb = new_block("for.exit");
  program_.block(header_end).succs[0] = exit_bb;
  for (BlockId brk : break_frames_.back())
    program_.block(brk).succs = {exit_bb};
  break_frames_.pop_back();

  // Header executes once per entry check plus once per completed iteration.
  program_.set_loop_bound(header, trips + 1);
  current_ = exit_bb;
  current_terminated_ = false;
}

void IrBuilder::for_range_reg(Reg counter, std::int64_t start, Reg limit_reg,
                              std::uint32_t bound, const Body& body) {
  UCP_REQUIRE(bound > 0, "for_range_reg needs a positive bound");
  movi(counter, start);

  const BlockId header = new_block("forr.header");
  fallthrough(header);
  current_ = header;
  current_terminated_ = false;

  const BlockId body_bb = new_block("forr.body");
  branch(Cond::kGe, counter, limit_reg, kInvalidBlock, body_bb);
  const BlockId header_end = header;

  break_frames_.emplace_back();
  current_ = body_bb;
  current_terminated_ = false;
  body();
  if (!current_terminated_) {
    addi(counter, counter, 1);
    jump(header);
  }

  const BlockId exit_bb = new_block("forr.exit");
  program_.block(header_end).succs[0] = exit_bb;
  for (BlockId brk : break_frames_.back())
    program_.block(brk).succs = {exit_bb};
  break_frames_.pop_back();

  program_.set_loop_bound(header, bound + 1);
  current_ = exit_bb;
  current_terminated_ = false;
}

void IrBuilder::for_range_rr(Reg counter, Reg start_reg, Reg limit_reg,
                             std::uint32_t bound, const Body& body) {
  UCP_REQUIRE(bound > 0, "for_range_rr needs a positive bound");
  mov(counter, start_reg);

  const BlockId header = new_block("forrr.header");
  fallthrough(header);
  current_ = header;
  current_terminated_ = false;

  const BlockId body_bb = new_block("forrr.body");
  branch(Cond::kGe, counter, limit_reg, kInvalidBlock, body_bb);
  const BlockId header_end = header;

  break_frames_.emplace_back();
  current_ = body_bb;
  current_terminated_ = false;
  body();
  if (!current_terminated_) {
    addi(counter, counter, 1);
    jump(header);
  }

  const BlockId exit_bb = new_block("forrr.exit");
  program_.block(header_end).succs[0] = exit_bb;
  for (BlockId brk : break_frames_.back())
    program_.block(brk).succs = {exit_bb};
  break_frames_.pop_back();

  program_.set_loop_bound(header, bound + 1);
  current_ = exit_bb;
  current_terminated_ = false;
}

void IrBuilder::for_down(Reg counter, std::int64_t start, std::int64_t limit,
                         const Body& body) {
  UCP_REQUIRE(start > limit, "for_down needs at least one iteration");
  movi(counter, start);
  const auto trips = static_cast<std::uint32_t>(start - limit);

  const BlockId header = new_block("ford.header");
  fallthrough(header);
  current_ = header;
  current_terminated_ = false;

  const BlockId body_bb = new_block("ford.body");
  branch_imm(Cond::kLe, counter, limit, kInvalidBlock, body_bb);
  const BlockId header_end = header;

  break_frames_.emplace_back();
  current_ = body_bb;
  current_terminated_ = false;
  body();
  if (!current_terminated_) {
    addi(counter, counter, -1);
    jump(header);
  }

  const BlockId exit_bb = new_block("ford.exit");
  program_.block(header_end).succs[0] = exit_bb;
  for (BlockId brk : break_frames_.back())
    program_.block(brk).succs = {exit_bb};
  break_frames_.pop_back();

  program_.set_loop_bound(header, trips + 1);
  current_ = exit_bb;
  current_terminated_ = false;
}

void IrBuilder::while_loop(std::uint32_t bound,
                           const std::function<LoopCond()>& condition,
                           const Body& body) {
  UCP_REQUIRE(bound > 0, "while_loop needs a positive bound");
  const BlockId header = new_block("while.header");
  fallthrough(header);
  current_ = header;
  current_terminated_ = false;

  const LoopCond lc = condition();
  const BlockId header_end = current_;  // condition code may span blocks? no:
  // condition code must stay straight-line; branch below terminates it.
  const BlockId body_bb = new_block("while.body");
  branch(lc.cond, lc.a, lc.b, body_bb, kInvalidBlock);

  break_frames_.emplace_back();
  current_ = body_bb;
  current_terminated_ = false;
  body();
  if (!current_terminated_) jump(header);

  const BlockId exit_bb = new_block("while.exit");
  program_.block(header_end).succs[1] = exit_bb;
  for (BlockId brk : break_frames_.back())
    program_.block(brk).succs = {exit_bb};
  break_frames_.pop_back();

  program_.set_loop_bound(header, bound + 1);
  current_ = exit_bb;
  current_terminated_ = false;
}

void IrBuilder::do_while(std::uint32_t bound, const Body& body, Cond cond,
                         Reg a, Reg b) {
  UCP_REQUIRE(bound > 0, "do_while needs a positive bound");
  const BlockId head = new_block("dowhile.body");
  fallthrough(head);
  current_ = head;
  current_terminated_ = false;

  break_frames_.emplace_back();
  body();
  UCP_REQUIRE(!current_terminated_,
              "do_while body must not end in a terminator");
  const BlockId latch = current_;
  const BlockId exit_bb = new_block("dowhile.exit");
  current_ = latch;
  branch(cond, a, b, head, exit_bb);

  for (BlockId brk : break_frames_.back())
    program_.block(brk).succs = {exit_bb};
  break_frames_.pop_back();

  // The loop header (== body head) executes at most `bound` times per entry.
  program_.set_loop_bound(head, bound);
  current_ = exit_bb;
  current_terminated_ = false;
}

void IrBuilder::break_loop() {
  UCP_REQUIRE(!break_frames_.empty(), "break_loop outside of a loop");
  Instruction in;
  in.op = Opcode::kJump;
  emit(in);  // successor patched when the loop exit block is created
  break_frames_.back().push_back(current_);
}

void IrBuilder::switch_on(
    Reg selector, const std::vector<std::pair<std::int64_t, Body>>& cases,
    const Body& default_body) {
  UCP_REQUIRE(!cases.empty(), "switch_on needs at least one case");
  std::vector<BlockId> pending_joins;

  for (const auto& [value, case_body] : cases) {
    const BlockId case_bb = new_block("case");
    branch_imm(Cond::kEq, selector, value, case_bb, kInvalidBlock);
    const BlockId test_bb = current_;

    current_ = case_bb;
    current_terminated_ = false;
    case_body();
    if (!current_terminated_) {
      Instruction in;
      in.op = Opcode::kJump;
      emit(in);
      pending_joins.push_back(current_);
    }

    const BlockId next_bb = new_block("swnext");
    program_.block(test_bb).succs[1] = next_bb;
    current_ = next_bb;
    current_terminated_ = false;
  }

  if (default_body) default_body();
  const bool default_terminated = current_terminated_;
  const BlockId default_end = current_;

  const BlockId join = new_block("swjoin");
  for (BlockId bb : pending_joins) program_.block(bb).succs = {join};
  if (!default_terminated) {
    current_ = default_end;
    current_terminated_ = false;
    fallthrough(join);
  }
  current_ = join;
  current_terminated_ = false;
}

void IrBuilder::set_data(std::vector<std::int64_t> words) {
  program_.set_data(std::move(words));
}

Program IrBuilder::take() {
  UCP_REQUIRE(!taken_, "builder already consumed by take()");
  UCP_REQUIRE(current_terminated_,
              "program must end in halt before take()");
  taken_ = true;
  verify_or_throw(program_);
  return std::move(program_);
}

}  // namespace ucp::ir
