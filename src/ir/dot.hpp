#pragma once

#include <string>

#include "ir/program.hpp"

namespace ucp::ir {

/// Renders the CFG in Graphviz DOT format (block labels, instruction counts,
/// loop-bound annotations, branch edges labelled T/F). Handy for debugging
/// suite programs and for the examples' output.
std::string to_dot(const Program& program);

}  // namespace ucp::ir
