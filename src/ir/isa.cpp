#include "ir/isa.hpp"

#include "support/check.hpp"

namespace ucp::ir {

std::string opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kMovImm:
      return "movi";
    case Opcode::kMov:
      return "mov";
    case Opcode::kAdd:
      return "add";
    case Opcode::kAddImm:
      return "addi";
    case Opcode::kSub:
      return "sub";
    case Opcode::kMul:
      return "mul";
    case Opcode::kDiv:
      return "div";
    case Opcode::kRem:
      return "rem";
    case Opcode::kAnd:
      return "and";
    case Opcode::kOr:
      return "or";
    case Opcode::kXor:
      return "xor";
    case Opcode::kShl:
      return "shl";
    case Opcode::kShr:
      return "shr";
    case Opcode::kSar:
      return "sar";
    case Opcode::kLoad:
      return "load";
    case Opcode::kStore:
      return "store";
    case Opcode::kBranch:
      return "br";
    case Opcode::kBranchImm:
      return "bri";
    case Opcode::kJump:
      return "jmp";
    case Opcode::kHalt:
      return "halt";
    case Opcode::kPrefetch:
      return "pfetch";
    case Opcode::kNop:
      return "nop";
  }
  UCP_CHECK_MSG(false, "unknown opcode");
}

std::string cond_name(Cond cond) {
  switch (cond) {
    case Cond::kEq:
      return "eq";
    case Cond::kNe:
      return "ne";
    case Cond::kLt:
      return "lt";
    case Cond::kLe:
      return "le";
    case Cond::kGt:
      return "gt";
    case Cond::kGe:
      return "ge";
  }
  UCP_CHECK_MSG(false, "unknown condition");
}

bool eval_cond(Cond cond, std::int64_t lhs, std::int64_t rhs) {
  switch (cond) {
    case Cond::kEq:
      return lhs == rhs;
    case Cond::kNe:
      return lhs != rhs;
    case Cond::kLt:
      return lhs < rhs;
    case Cond::kLe:
      return lhs <= rhs;
    case Cond::kGt:
      return lhs > rhs;
    case Cond::kGe:
      return lhs >= rhs;
  }
  UCP_CHECK_MSG(false, "unknown condition");
}

}  // namespace ucp::ir
