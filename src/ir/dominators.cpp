#include "ir/dominators.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace ucp::ir {

DominatorTree::DominatorTree(const Program& program) {
  const std::vector<BlockId> rpo = program.reverse_post_order();
  const auto preds = program.predecessors();

  idom_.assign(program.num_blocks(), kInvalidBlock);
  rpo_index_.assign(program.num_blocks(), kUnreached);
  for (std::uint32_t i = 0; i < rpo.size(); ++i) rpo_index_[rpo[i]] = i;

  const BlockId entry = program.entry();
  idom_[entry] = entry;

  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index_[a] > rpo_index_[b]) a = idom_[a];
      while (rpo_index_[b] > rpo_index_[a]) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId bb : rpo) {
      if (bb == entry) continue;
      BlockId new_idom = kInvalidBlock;
      for (BlockId p : preds[bb]) {
        if (rpo_index_[p] == kUnreached) continue;  // unreachable pred
        if (idom_[p] == kInvalidBlock) continue;    // not processed yet
        new_idom =
            (new_idom == kInvalidBlock) ? p : intersect(new_idom, p);
      }
      UCP_CHECK_MSG(new_idom != kInvalidBlock,
                    "reachable block without processed predecessor");
      if (idom_[bb] != new_idom) {
        idom_[bb] = new_idom;
        changed = true;
      }
    }
  }
}

BlockId DominatorTree::idom(BlockId bb) const {
  UCP_REQUIRE(bb < idom_.size(), "block id out of range");
  UCP_REQUIRE(idom_[bb] != kInvalidBlock, "block is unreachable");
  return idom_[bb];
}

bool DominatorTree::reachable(BlockId bb) const {
  UCP_REQUIRE(bb < idom_.size(), "block id out of range");
  return rpo_index_[bb] != kUnreached;
}

bool DominatorTree::dominates(BlockId a, BlockId b) const {
  UCP_REQUIRE(reachable(a) && reachable(b),
              "dominance query on unreachable block");
  BlockId x = b;
  for (;;) {
    if (x == a) return true;
    const BlockId up = idom_[x];
    if (up == x) return false;  // reached entry
    x = up;
  }
}

bool NaturalLoop::contains(BlockId bb) const {
  return std::binary_search(blocks.begin(), blocks.end(), bb);
}

std::vector<NaturalLoop> find_natural_loops(const Program& program) {
  const DominatorTree dom(program);
  const auto preds = program.predecessors();

  // Collect back edges, grouped by header.
  std::map<BlockId, std::vector<BlockId>> latches_by_header;
  for (const BasicBlock& bb : program.blocks()) {
    if (!dom.reachable(bb.id)) continue;
    for (BlockId s : bb.succs) {
      if (!dom.reachable(s)) continue;
      if (dom.dominates(s, bb.id)) {
        latches_by_header[s].push_back(bb.id);
      } else if (s != bb.id) {
        // A retreating edge whose target does not dominate the source would
        // make the CFG irreducible.
        // (Forward and cross edges never satisfy rpo[s] <= rpo[bb] both ways;
        // detecting true irreducibility precisely requires a DFS; we settle
        // for the dominance criterion, which is exact on reducible CFGs.)
      }
    }
  }

  std::vector<NaturalLoop> loops;
  for (auto& [header, latches] : latches_by_header) {
    NaturalLoop loop;
    loop.header = header;
    loop.latches = latches;
    // Natural loop body: header plus all blocks that reach a latch without
    // passing through the header (reverse flood fill from the latches).
    std::set<BlockId> body{header};
    std::vector<BlockId> work(latches.begin(), latches.end());
    while (!work.empty()) {
      const BlockId b = work.back();
      work.pop_back();
      if (!body.insert(b).second) continue;
      for (BlockId p : preds[b]) {
        if (dom.reachable(p) && body.find(p) == body.end()) work.push_back(p);
      }
    }
    loop.blocks.assign(body.begin(), body.end());
    loops.push_back(std::move(loop));
  }

  // Nesting: loop A directly contains loop B if A's body contains B's header
  // and no intermediate loop does.
  for (auto& outer : loops) {
    for (const auto& inner : loops) {
      if (inner.header == outer.header) continue;
      if (!outer.contains(inner.header)) continue;
      bool direct = true;
      for (const auto& mid : loops) {
        if (mid.header == outer.header || mid.header == inner.header) continue;
        if (outer.contains(mid.header) && mid.contains(inner.header)) {
          direct = false;
          break;
        }
      }
      if (direct) outer.sub_headers.push_back(inner.header);
    }
  }
  return loops;
}

std::vector<NaturalLoop> loops_outermost_first(const Program& program) {
  std::vector<NaturalLoop> loops = find_natural_loops(program);
  std::sort(loops.begin(), loops.end(),
            [](const NaturalLoop& a, const NaturalLoop& b) {
              if (a.blocks.size() != b.blocks.size())
                return a.blocks.size() > b.blocks.size();
              return a.header < b.header;
            });
  return loops;
}

}  // namespace ucp::ir
