#include "ir/layout.hpp"

namespace ucp::ir {

namespace {
bool is_pow2(std::uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

Layout::Layout(const Program& program, std::uint32_t block_bytes,
               std::uint32_t base_address)
    : block_bytes_(block_bytes), base_address_(base_address) {
  UCP_REQUIRE(is_pow2(block_bytes), "block size must be a power of two");
  UCP_REQUIRE(block_bytes % kInstrBytes == 0,
              "block size must hold whole instructions");
  UCP_REQUIRE(base_address % block_bytes == 0,
              "base address must be block-aligned");

  addresses_.assign(program.num_instr_ids(), kNoAddress);
  block_start_.assign(program.num_blocks(), kNoAddress);

  std::uint32_t addr = base_address;
  for (const BasicBlock& bb : program.blocks()) {
    block_start_[bb.id] = addr;
    for (const Instruction& in : bb.instrs) {
      UCP_CHECK(in.id < addresses_.size());
      addresses_[in.id] = addr;
      addr += kInstrBytes;
    }
  }
  code_bytes_ = addr - base_address;
}

std::uint32_t Layout::address(InstrId id) const {
  UCP_REQUIRE(id < addresses_.size() && addresses_[id] != kNoAddress,
              "instruction has no address in this layout");
  return addresses_[id];
}

std::uint32_t Layout::block_start_address(BlockId bb) const {
  UCP_REQUIRE(bb < block_start_.size() && block_start_[bb] != kNoAddress,
              "basic block has no address in this layout");
  return block_start_[bb];
}

std::uint32_t Layout::num_mem_blocks() const {
  if (code_bytes_ == 0) return 0;
  const MemBlockId first = base_address_ / block_bytes_;
  const MemBlockId last = (base_address_ + code_bytes_ - 1) / block_bytes_;
  return last - first + 1;
}

}  // namespace ucp::ir
