#pragma once

#include <cstdint>
#include <string>

namespace ucp::ir {

/// Every instruction occupies this many bytes in instruction memory. The
/// optimizer relies on this when relocating code after a prefetch insertion
/// (a prefetch is an ordinary 4-byte instruction, like ARMv7 `PLI`).
inline constexpr std::uint32_t kInstrBytes = 4;

/// Number of architectural registers in the mini-ISA.
inline constexpr std::uint8_t kNumRegs = 32;

/// A compact RISC instruction set, sufficient to express the Mälardalen-like
/// kernels in `src/suite` with real computation. Data accesses go to a
/// separate word-addressed data memory; only instruction fetches touch the
/// modelled instruction cache, exactly as in the paper.
enum class Opcode : std::uint8_t {
  kMovImm,    ///< rd = imm
  kMov,       ///< rd = rs1
  kAdd,       ///< rd = rs1 + rs2
  kAddImm,    ///< rd = rs1 + imm
  kSub,       ///< rd = rs1 - rs2
  kMul,       ///< rd = rs1 * rs2
  kDiv,       ///< rd = rs1 / rs2 (trapping on zero)
  kRem,       ///< rd = rs1 % rs2 (trapping on zero)
  kAnd,       ///< rd = rs1 & rs2
  kOr,        ///< rd = rs1 | rs2
  kXor,       ///< rd = rs1 ^ rs2
  kShl,       ///< rd = rs1 << (rs2 & 63)
  kShr,       ///< rd = unsigned(rs1) >> (rs2 & 63)
  kSar,       ///< rd = rs1 >> (rs2 & 63), arithmetic
  kLoad,      ///< rd = data[rs1 + imm]
  kStore,     ///< data[rs1 + imm] = rs2
  kBranch,    ///< if (rs1 cond rs2) goto succ[0] else succ[1]; terminator
  kBranchImm, ///< if (rs1 cond imm) goto succ[0] else succ[1]; terminator
  kJump,      ///< goto succ[0]; terminator
  kHalt,      ///< stop execution; terminator
  kPrefetch,  ///< prefetch the I-memory block holding instruction `pf_target`
  kNop,       ///< no effect
};

/// Comparison condition for kBranch.
enum class Cond : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// True for opcodes that must terminate a basic block.
constexpr bool is_terminator(Opcode op) {
  return op == Opcode::kBranch || op == Opcode::kBranchImm ||
         op == Opcode::kJump || op == Opcode::kHalt;
}

/// True for the two conditional branch forms.
constexpr bool is_branch(Opcode op) {
  return op == Opcode::kBranch || op == Opcode::kBranchImm;
}

/// True for opcodes that write a destination register.
constexpr bool writes_register(Opcode op) {
  switch (op) {
    case Opcode::kMovImm:
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kAddImm:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kSar:
    case Opcode::kLoad:
      return true;
    default:
      return false;
  }
}

std::string opcode_name(Opcode op);
std::string cond_name(Cond cond);
/// Evaluates `lhs cond rhs` (used by both interpreter and tests).
bool eval_cond(Cond cond, std::int64_t lhs, std::int64_t rhs);

}  // namespace ucp::ir
