#pragma once

#include <vector>

#include "ir/program.hpp"

namespace ucp::ir {

/// Dominator tree over a program's CFG (Cooper/Harvey/Kennedy iterative
/// algorithm on reverse post-order). Needed to find natural loops, which in
/// turn drive the VIVU virtual unrolling and the IPET loop-bound constraints.
class DominatorTree {
 public:
  explicit DominatorTree(const Program& program);

  /// Immediate dominator; the entry's idom is itself.
  BlockId idom(BlockId bb) const;
  /// True if `a` dominates `b` (reflexive).
  bool dominates(BlockId a, BlockId b) const;
  /// True if `bb` is reachable from the entry.
  bool reachable(BlockId bb) const;

 private:
  std::vector<BlockId> idom_;
  std::vector<std::uint32_t> rpo_index_;  // position in RPO, for intersect()
  static constexpr std::uint32_t kUnreached = 0xffffffffu;
};

/// One natural loop: the header, the latches (sources of back edges into the
/// header), and the set of member blocks (header included).
struct NaturalLoop {
  BlockId header = kInvalidBlock;
  std::vector<BlockId> latches;
  std::vector<BlockId> blocks;        // sorted ascending
  std::vector<BlockId> sub_headers;   // headers of loops nested directly inside

  bool contains(BlockId bb) const;
};

/// Finds all natural loops of a reducible CFG. Throws InvalidArgument if an
/// irreducible back edge is found (target does not dominate source), since
/// VIVU requires reducible flow.
std::vector<NaturalLoop> find_natural_loops(const Program& program);

/// Loops ordered so that every loop appears after any loop containing it
/// (outermost first). Useful for recursive unrolling.
std::vector<NaturalLoop> loops_outermost_first(const Program& program);

}  // namespace ucp::ir
