#include "ir/text_codec.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"

namespace ucp::ir {

namespace {

constexpr const char* kMagic = "ucp-program v1";
constexpr std::size_t kDataWordsPerLine = 16;

const std::unordered_map<std::string, Opcode>& opcode_by_name() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, Opcode>();
    for (int i = 0; i <= static_cast<int>(Opcode::kNop); ++i) {
      const auto op = static_cast<Opcode>(i);
      (*m)[opcode_name(op)] = op;
    }
    return m;
  }();
  return *map;
}

const std::unordered_map<std::string, Cond>& cond_by_name() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, Cond>();
    for (int i = 0; i <= static_cast<int>(Cond::kGe); ++i) {
      const auto c = static_cast<Cond>(i);
      (*m)[cond_name(c)] = c;
    }
    return m;
  }();
  return *map;
}

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  throw InvalidArgument("program text line " + std::to_string(line_no) +
                        ": " + what);
}

/// Tokenizer over one line; reports errors with the line number baked in.
class LineTokens {
 public:
  LineTokens(const std::string& line, std::size_t line_no)
      : is_(line), line_no_(line_no) {}

  std::string word(const char* what) {
    std::string w;
    if (!(is_ >> w)) parse_error(line_no_, std::string("missing ") + what);
    return w;
  }

  std::int64_t integer(const char* what) {
    const std::string w = word(what);
    try {
      std::size_t used = 0;
      const std::int64_t v = std::stoll(w, &used);
      if (used != w.size()) throw std::invalid_argument(w);
      return v;
    } catch (const std::exception&) {
      parse_error(line_no_, std::string("bad ") + what + " '" + w + "'");
    }
  }

  std::uint32_t index(const char* what) {
    const std::int64_t v = integer(what);
    if (v < 0 || v > static_cast<std::int64_t>(UINT32_MAX))
      parse_error(line_no_, std::string(what) + " out of range");
    return static_cast<std::uint32_t>(v);
  }

  bool done() {
    std::string rest;
    return !(is_ >> rest);
  }

  void expect_done() {
    std::string rest;
    if (is_ >> rest)
      parse_error(line_no_, "unexpected trailing token '" + rest + "'");
  }

 private:
  std::istringstream is_;
  std::size_t line_no_;
};

}  // namespace

std::string to_text(const Program& program) {
  // File-position renumbering for instruction ids.
  std::unordered_map<InstrId, InstrId> renum;
  InstrId next = 0;
  for (const BasicBlock& bb : program.blocks())
    for (const Instruction& in : bb.instrs) renum[in.id] = next++;

  std::ostringstream os;
  os << "# " << kMagic << "\n";
  os << "program " << program.name() << "\n";
  os << "entry " << program.entry() << "\n";
  for (const auto& [header, bound] : program.loop_bounds())
    os << "loop_bound " << header << " " << bound << "\n";
  if (!program.data().empty()) {
    os << "data " << program.data().size() << "\n";
    for (std::size_t i = 0; i < program.data().size();
         i += kDataWordsPerLine) {
      os << " ";
      const std::size_t end =
          std::min(program.data().size(), i + kDataWordsPerLine);
      for (std::size_t j = i; j < end; ++j) os << " " << program.data()[j];
      os << "\n";
    }
  }
  for (const BasicBlock& bb : program.blocks()) {
    os << "block " << bb.id << " " << bb.label << "\n";
    os << "  succs";
    for (BlockId s : bb.succs) os << " " << s;
    os << "\n";
    for (const Instruction& in : bb.instrs) {
      os << "  " << opcode_name(in.op);
      switch (in.op) {
        case Opcode::kMovImm:
          os << " r" << int(in.rd) << " " << in.imm;
          break;
        case Opcode::kMov:
          os << " r" << int(in.rd) << " r" << int(in.rs1);
          break;
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kMul:
        case Opcode::kDiv:
        case Opcode::kRem:
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kShr:
        case Opcode::kSar:
          os << " r" << int(in.rd) << " r" << int(in.rs1) << " r"
             << int(in.rs2);
          break;
        case Opcode::kAddImm:
          os << " r" << int(in.rd) << " r" << int(in.rs1) << " " << in.imm;
          break;
        case Opcode::kLoad:
          os << " r" << int(in.rd) << " r" << int(in.rs1) << " " << in.imm;
          break;
        case Opcode::kStore:
          os << " r" << int(in.rs1) << " " << in.imm << " r" << int(in.rs2);
          break;
        case Opcode::kBranch:
          os << " " << cond_name(in.cond) << " r" << int(in.rs1) << " r"
             << int(in.rs2);
          break;
        case Opcode::kBranchImm:
          os << " " << cond_name(in.cond) << " r" << int(in.rs1) << " "
             << in.imm;
          break;
        case Opcode::kJump:
        case Opcode::kHalt:
        case Opcode::kNop:
          break;
        case Opcode::kPrefetch: {
          const auto it = renum.find(in.pf_target);
          UCP_REQUIRE(it != renum.end(),
                      "to_text: prefetch target #" +
                          std::to_string(in.pf_target) +
                          " does not name an instruction");
          os << " #" << it->second;
          break;
        }
      }
      os << "\n";
    }
  }
  return os.str();
}

namespace {

std::uint8_t parse_reg(const std::string& w, std::size_t line_no) {
  if (w.size() < 2 || w[0] != 'r')
    parse_error(line_no, "expected register, got '" + w + "'");
  for (std::size_t i = 1; i < w.size(); ++i)
    if (w[i] < '0' || w[i] > '9')
      parse_error(line_no, "expected register, got '" + w + "'");
  const long v = std::stol(w.substr(1));
  if (v < 0 || v > 255)
    parse_error(line_no, "register out of range '" + w + "'");
  return static_cast<std::uint8_t>(v);
}

Cond parse_cond(const std::string& w, std::size_t line_no) {
  const auto it = cond_by_name().find(w);
  if (it == cond_by_name().end())
    parse_error(line_no, "unknown condition '" + w + "'");
  return it->second;
}

}  // namespace

Program from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;

  Program program("");
  bool seen_program = false;
  BlockId current = kInvalidBlock;
  bool current_has_succs = false;
  // Prefetch targets refer to file positions; append() assigns exactly those
  // ids in file order, so `#N` parses directly into pf_target.
  std::size_t data_words_left = 0;
  std::vector<std::int64_t> data;
  std::int64_t entry = -1;
  std::map<BlockId, std::uint32_t> loop_bounds;

  while (std::getline(is, line)) {
    ++line_no;
    if (data_words_left > 0) {
      std::istringstream ws(line);
      std::string w;
      while (ws >> w) {
        if (data_words_left == 0)
          parse_error(line_no, "more data words than declared");
        try {
          data.push_back(std::stoll(w));
        } catch (const std::exception&) {
          parse_error(line_no, "bad data word '" + w + "'");
        }
        --data_words_left;
      }
      continue;
    }

    std::istringstream head(line);
    std::string kw;
    if (!(head >> kw)) continue;  // blank line
    if (kw[0] == '#') continue;   // comment

    if (kw == "program") {
      std::string name;
      if (!(head >> name)) parse_error(line_no, "missing program name");
      program = Program(name);
      seen_program = true;
    } else if (kw == "entry") {
      LineTokens t(line.substr(line.find(kw) + kw.size()), line_no);
      entry = t.integer("entry block id");
      t.expect_done();
    } else if (kw == "loop_bound") {
      LineTokens t(line.substr(line.find(kw) + kw.size()), line_no);
      const std::uint32_t header = t.index("loop header id");
      const std::uint32_t bound = t.index("loop bound");
      t.expect_done();
      loop_bounds[header] = bound;
    } else if (kw == "data") {
      LineTokens t(line.substr(line.find(kw) + kw.size()), line_no);
      data_words_left = t.index("data word count");
      t.expect_done();
      data.reserve(data_words_left);
    } else if (kw == "block") {
      if (!seen_program) parse_error(line_no, "block before program header");
      LineTokens t(line.substr(line.find(kw) + kw.size()), line_no);
      const std::uint32_t id = t.index("block id");
      std::string label = t.word("block label");
      t.expect_done();
      const BlockId got = program.add_block(label);
      if (got != id)
        parse_error(line_no, "block ids must be sequential: expected block " +
                                 std::to_string(got));
      current = got;
      current_has_succs = false;
    } else if (kw == "succs") {
      if (current == kInvalidBlock)
        parse_error(line_no, "succs outside a block");
      if (current_has_succs)
        parse_error(line_no, "duplicate succs line");
      std::istringstream t(line);
      std::string skip;
      t >> skip;
      std::string w;
      while (t >> w) {
        try {
          program.block(current).succs.push_back(
              static_cast<BlockId>(std::stoul(w)));
        } catch (const std::exception&) {
          parse_error(line_no, "bad successor id '" + w + "'");
        }
      }
      current_has_succs = true;
    } else {
      // An instruction line.
      if (current == kInvalidBlock)
        parse_error(line_no, "instruction outside a block");
      const auto it = opcode_by_name().find(kw);
      if (it == opcode_by_name().end())
        parse_error(line_no, "unknown opcode '" + kw + "'");
      Instruction in;
      in.op = it->second;
      LineTokens t(line.substr(line.find(kw) + kw.size()), line_no);
      switch (in.op) {
        case Opcode::kMovImm:
          in.rd = parse_reg(t.word("rd"), line_no);
          in.imm = t.integer("imm");
          break;
        case Opcode::kMov:
          in.rd = parse_reg(t.word("rd"), line_no);
          in.rs1 = parse_reg(t.word("rs1"), line_no);
          break;
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kMul:
        case Opcode::kDiv:
        case Opcode::kRem:
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kShr:
        case Opcode::kSar:
          in.rd = parse_reg(t.word("rd"), line_no);
          in.rs1 = parse_reg(t.word("rs1"), line_no);
          in.rs2 = parse_reg(t.word("rs2"), line_no);
          break;
        case Opcode::kAddImm:
        case Opcode::kLoad:
          in.rd = parse_reg(t.word("rd"), line_no);
          in.rs1 = parse_reg(t.word("rs1"), line_no);
          in.imm = t.integer("imm");
          break;
        case Opcode::kStore:
          in.rs1 = parse_reg(t.word("rs1"), line_no);
          in.imm = t.integer("imm");
          in.rs2 = parse_reg(t.word("rs2"), line_no);
          break;
        case Opcode::kBranch:
          in.cond = parse_cond(t.word("cond"), line_no);
          in.rs1 = parse_reg(t.word("rs1"), line_no);
          in.rs2 = parse_reg(t.word("rs2"), line_no);
          break;
        case Opcode::kBranchImm:
          in.cond = parse_cond(t.word("cond"), line_no);
          in.rs1 = parse_reg(t.word("rs1"), line_no);
          in.imm = t.integer("imm");
          break;
        case Opcode::kJump:
        case Opcode::kHalt:
        case Opcode::kNop:
          break;
        case Opcode::kPrefetch: {
          const std::string w = t.word("prefetch target");
          if (w.size() < 2 || w[0] != '#')
            parse_error(line_no, "expected #<instr>, got '" + w + "'");
          try {
            in.pf_target = static_cast<InstrId>(std::stoul(w.substr(1)));
          } catch (const std::exception&) {
            parse_error(line_no, "bad prefetch target '" + w + "'");
          }
          break;
        }
      }
      t.expect_done();
      program.append(current, in);
    }
  }

  if (!seen_program) parse_error(line_no, "missing program header");
  if (data_words_left > 0)
    parse_error(line_no, "data section ended " +
                             std::to_string(data_words_left) +
                             " words short");
  if (entry >= 0) {
    if (entry >= static_cast<std::int64_t>(program.num_blocks()))
      throw InvalidArgument("program text: entry block " +
                            std::to_string(entry) + " does not exist");
    program.set_entry(static_cast<BlockId>(entry));
  }
  for (const auto& [header, bound] : loop_bounds) {
    if (header >= program.num_blocks())
      throw InvalidArgument("program text: loop_bound header bb" +
                            std::to_string(header) + " does not exist");
    program.set_loop_bound(header, bound);
  }
  if (!data.empty()) program.set_data(std::move(data));
  return program;
}

}  // namespace ucp::ir
