#include "ir/text_codec.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"

namespace ucp::ir {

namespace {

constexpr const char* kMagic = "ucp-program v1";
constexpr std::size_t kDataWordsPerLine = 16;

const std::unordered_map<std::string, Opcode>& opcode_by_name() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, Opcode>();
    for (int i = 0; i <= static_cast<int>(Opcode::kNop); ++i) {
      const auto op = static_cast<Opcode>(i);
      (*m)[opcode_name(op)] = op;
    }
    return m;
  }();
  return *map;
}

const std::unordered_map<std::string, Cond>& cond_by_name() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, Cond>();
    for (int i = 0; i <= static_cast<int>(Cond::kGe); ++i) {
      const auto c = static_cast<Cond>(i);
      (*m)[cond_name(c)] = c;
    }
    return m;
  }();
  return *map;
}

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  throw InvalidArgument("program text line " + std::to_string(line_no) +
                        ": " + what);
}

/// Tokenizer over one line; reports errors with the line number baked in.
class LineTokens {
 public:
  LineTokens(const std::string& line, std::size_t line_no)
      : is_(line), line_no_(line_no) {}

  std::string word(const char* what) {
    std::string w;
    if (!(is_ >> w)) parse_error(line_no_, std::string("missing ") + what);
    return w;
  }

  std::int64_t integer(const char* what) {
    const std::string w = word(what);
    try {
      std::size_t used = 0;
      const std::int64_t v = std::stoll(w, &used);
      if (used != w.size()) throw std::invalid_argument(w);
      return v;
    } catch (const std::exception&) {
      parse_error(line_no_, std::string("bad ") + what + " '" + w + "'");
    }
  }

  std::uint32_t index(const char* what) {
    const std::int64_t v = integer(what);
    if (v < 0 || v > static_cast<std::int64_t>(UINT32_MAX))
      parse_error(line_no_, std::string(what) + " out of range");
    return static_cast<std::uint32_t>(v);
  }

  bool done() {
    std::string rest;
    return !(is_ >> rest);
  }

  void expect_done() {
    std::string rest;
    if (is_ >> rest)
      parse_error(line_no_, "unexpected trailing token '" + rest + "'");
  }

 private:
  std::istringstream is_;
  std::size_t line_no_;
};

}  // namespace

std::string to_text(const Program& program) {
  // File-position renumbering for instruction ids.
  std::unordered_map<InstrId, InstrId> renum;
  InstrId next = 0;
  for (const BasicBlock& bb : program.blocks())
    for (const Instruction& in : bb.instrs) renum[in.id] = next++;

  std::ostringstream os;
  os << "# " << kMagic << "\n";
  os << "program " << program.name() << "\n";
  os << "entry " << program.entry() << "\n";
  for (const auto& [header, bound] : program.loop_bounds())
    os << "loop_bound " << header << " " << bound << "\n";
  if (!program.data().empty()) {
    os << "data " << program.data().size() << "\n";
    for (std::size_t i = 0; i < program.data().size();
         i += kDataWordsPerLine) {
      os << " ";
      const std::size_t end =
          std::min(program.data().size(), i + kDataWordsPerLine);
      for (std::size_t j = i; j < end; ++j) os << " " << program.data()[j];
      os << "\n";
    }
  }
  for (const BasicBlock& bb : program.blocks()) {
    os << "block " << bb.id << " " << bb.label << "\n";
    os << "  succs";
    for (BlockId s : bb.succs) os << " " << s;
    os << "\n";
    for (const Instruction& in : bb.instrs) {
      os << "  " << opcode_name(in.op);
      switch (in.op) {
        case Opcode::kMovImm:
          os << " r" << int(in.rd) << " " << in.imm;
          break;
        case Opcode::kMov:
          os << " r" << int(in.rd) << " r" << int(in.rs1);
          break;
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kMul:
        case Opcode::kDiv:
        case Opcode::kRem:
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kShr:
        case Opcode::kSar:
          os << " r" << int(in.rd) << " r" << int(in.rs1) << " r"
             << int(in.rs2);
          break;
        case Opcode::kAddImm:
          os << " r" << int(in.rd) << " r" << int(in.rs1) << " " << in.imm;
          break;
        case Opcode::kLoad:
          os << " r" << int(in.rd) << " r" << int(in.rs1) << " " << in.imm;
          break;
        case Opcode::kStore:
          os << " r" << int(in.rs1) << " " << in.imm << " r" << int(in.rs2);
          break;
        case Opcode::kBranch:
          os << " " << cond_name(in.cond) << " r" << int(in.rs1) << " r"
             << int(in.rs2);
          break;
        case Opcode::kBranchImm:
          os << " " << cond_name(in.cond) << " r" << int(in.rs1) << " "
             << in.imm;
          break;
        case Opcode::kJump:
        case Opcode::kHalt:
        case Opcode::kNop:
          break;
        case Opcode::kPrefetch: {
          const auto it = renum.find(in.pf_target);
          UCP_REQUIRE(it != renum.end(),
                      "to_text: prefetch target #" +
                          std::to_string(in.pf_target) +
                          " does not name an instruction");
          os << " #" << it->second;
          break;
        }
      }
      os << "\n";
    }
  }
  return os.str();
}

namespace {

std::uint8_t parse_reg(const std::string& w, std::size_t line_no) {
  if (w.size() < 2 || w[0] != 'r')
    parse_error(line_no, "expected register, got '" + w + "'");
  for (std::size_t i = 1; i < w.size(); ++i)
    if (w[i] < '0' || w[i] > '9')
      parse_error(line_no, "expected register, got '" + w + "'");
  // Length-capped before conversion: "r99999999999999999999" must be a
  // parse error, not a std::out_of_range escaping from std::stol.
  if (w.size() > 4)
    parse_error(line_no, "register out of range '" + w + "'");
  const long v = std::stol(w.substr(1));
  if (v < 0 || v > 255)
    parse_error(line_no, "register out of range '" + w + "'");
  return static_cast<std::uint8_t>(v);
}

/// Strict digits-only uint32 parse: full consume, explicit range check, no
/// exception can escape (std::stoul on a 30-digit string would throw
/// std::out_of_range past the old catch handlers' expectations).
std::uint32_t parse_index_word(const std::string& w, std::size_t line_no,
                               const char* what) {
  if (w.empty() || w.size() > 10 ||
      w.find_first_not_of("0123456789") != std::string::npos)
    parse_error(line_no, std::string("bad ") + what + " '" + w + "'");
  const std::uint64_t v = std::stoull(w);
  if (v > UINT32_MAX)
    parse_error(line_no, std::string(what) + " out of range '" + w + "'");
  return static_cast<std::uint32_t>(v);
}

Cond parse_cond(const std::string& w, std::size_t line_no) {
  const auto it = cond_by_name().find(w);
  if (it == cond_by_name().end())
    parse_error(line_no, "unknown condition '" + w + "'");
  return it->second;
}

/// The parser proper. Throws InvalidArgument on malformed input; every
/// count an attacker controls is checked against `limits` *before* it
/// drives an allocation or a loop.
Program parse_program(const std::string& text, const CodecLimits& limits) {
  if (text.size() > limits.max_bytes)
    throw InvalidArgument("program text: " + std::to_string(text.size()) +
                          " bytes exceeds the " +
                          std::to_string(limits.max_bytes) + "-byte limit");
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t instr_count = 0;

  Program program("");
  bool seen_program = false;
  BlockId current = kInvalidBlock;
  bool current_has_succs = false;
  // Prefetch targets refer to file positions; append() assigns exactly those
  // ids in file order, so `#N` parses directly into pf_target.
  std::size_t data_words_left = 0;
  std::vector<std::int64_t> data;
  std::int64_t entry = -1;
  std::map<BlockId, std::uint32_t> loop_bounds;

  while (std::getline(is, line)) {
    ++line_no;
    if (line_no > limits.max_lines)
      parse_error(line_no, "input exceeds the " +
                               std::to_string(limits.max_lines) +
                               "-line limit");
    if (data_words_left > 0) {
      std::istringstream ws(line);
      std::string w;
      while (ws >> w) {
        if (data_words_left == 0)
          parse_error(line_no, "more data words than declared");
        try {
          data.push_back(std::stoll(w));
        } catch (const std::exception&) {
          parse_error(line_no, "bad data word '" + w + "'");
        }
        --data_words_left;
      }
      continue;
    }

    std::istringstream head(line);
    std::string kw;
    if (!(head >> kw)) continue;  // blank line
    if (kw[0] == '#') {
      // Comments are skipped — except the magic header, which is
      // version-checked so a future-format program fails loudly here
      // instead of half-parsing into something subtly wrong.
      std::string comment = line.substr(line.find('#') + 1);
      const std::size_t start = comment.find_first_not_of(" \t");
      comment = start == std::string::npos ? "" : comment.substr(start);
      if (comment.rfind("ucp-program", 0) == 0 && comment != kMagic)
        parse_error(line_no, "unsupported program format '" + comment +
                                 "' (this build reads '" +
                                 std::string(kMagic) + "')");
      continue;
    }

    if (kw == "program") {
      std::string name;
      if (!(head >> name)) parse_error(line_no, "missing program name");
      if (name.size() > limits.max_name_bytes)
        parse_error(line_no, "program name exceeds " +
                                 std::to_string(limits.max_name_bytes) +
                                 " bytes");
      program = Program(name);
      seen_program = true;
    } else if (kw == "entry") {
      LineTokens t(line.substr(line.find(kw) + kw.size()), line_no);
      entry = t.integer("entry block id");
      t.expect_done();
    } else if (kw == "loop_bound") {
      LineTokens t(line.substr(line.find(kw) + kw.size()), line_no);
      const std::uint32_t header = t.index("loop header id");
      const std::uint32_t bound = t.index("loop bound");
      t.expect_done();
      if (loop_bounds.size() >= limits.max_loop_bounds)
        parse_error(line_no, "more than " +
                                 std::to_string(limits.max_loop_bounds) +
                                 " loop bounds");
      loop_bounds[header] = bound;
    } else if (kw == "data") {
      LineTokens t(line.substr(line.find(kw) + kw.size()), line_no);
      data_words_left = t.index("data word count");
      t.expect_done();
      // Cap before the reserve: the declared count is attacker-chosen and
      // must never size an allocation past the limit.
      if (data_words_left > limits.max_data_words)
        parse_error(line_no, "data section declares " +
                                 std::to_string(data_words_left) +
                                 " words (limit " +
                                 std::to_string(limits.max_data_words) + ")");
      data.reserve(data_words_left);
    } else if (kw == "block") {
      if (!seen_program) parse_error(line_no, "block before program header");
      LineTokens t(line.substr(line.find(kw) + kw.size()), line_no);
      const std::uint32_t id = t.index("block id");
      std::string label = t.word("block label");
      t.expect_done();
      if (program.num_blocks() >= limits.max_blocks)
        parse_error(line_no, "more than " +
                                 std::to_string(limits.max_blocks) +
                                 " blocks");
      if (label.size() > limits.max_name_bytes)
        parse_error(line_no, "block label exceeds " +
                                 std::to_string(limits.max_name_bytes) +
                                 " bytes");
      const BlockId got = program.add_block(label);
      if (got != id)
        parse_error(line_no, "block ids must be sequential: expected block " +
                                 std::to_string(got));
      current = got;
      current_has_succs = false;
    } else if (kw == "succs") {
      if (current == kInvalidBlock)
        parse_error(line_no, "succs outside a block");
      if (current_has_succs)
        parse_error(line_no, "duplicate succs line");
      std::istringstream t(line);
      std::string skip;
      t >> skip;
      std::string w;
      while (t >> w) {
        if (program.block(current).succs.size() >= limits.max_succs)
          parse_error(line_no, "more than " +
                                   std::to_string(limits.max_succs) +
                                   " successors");
        program.block(current).succs.push_back(
            parse_index_word(w, line_no, "successor id"));
      }
      current_has_succs = true;
    } else {
      // An instruction line.
      if (current == kInvalidBlock)
        parse_error(line_no, "instruction outside a block");
      const auto it = opcode_by_name().find(kw);
      if (it == opcode_by_name().end())
        parse_error(line_no, "unknown opcode '" + kw + "'");
      Instruction in;
      in.op = it->second;
      LineTokens t(line.substr(line.find(kw) + kw.size()), line_no);
      switch (in.op) {
        case Opcode::kMovImm:
          in.rd = parse_reg(t.word("rd"), line_no);
          in.imm = t.integer("imm");
          break;
        case Opcode::kMov:
          in.rd = parse_reg(t.word("rd"), line_no);
          in.rs1 = parse_reg(t.word("rs1"), line_no);
          break;
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kMul:
        case Opcode::kDiv:
        case Opcode::kRem:
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kShr:
        case Opcode::kSar:
          in.rd = parse_reg(t.word("rd"), line_no);
          in.rs1 = parse_reg(t.word("rs1"), line_no);
          in.rs2 = parse_reg(t.word("rs2"), line_no);
          break;
        case Opcode::kAddImm:
        case Opcode::kLoad:
          in.rd = parse_reg(t.word("rd"), line_no);
          in.rs1 = parse_reg(t.word("rs1"), line_no);
          in.imm = t.integer("imm");
          break;
        case Opcode::kStore:
          in.rs1 = parse_reg(t.word("rs1"), line_no);
          in.imm = t.integer("imm");
          in.rs2 = parse_reg(t.word("rs2"), line_no);
          break;
        case Opcode::kBranch:
          in.cond = parse_cond(t.word("cond"), line_no);
          in.rs1 = parse_reg(t.word("rs1"), line_no);
          in.rs2 = parse_reg(t.word("rs2"), line_no);
          break;
        case Opcode::kBranchImm:
          in.cond = parse_cond(t.word("cond"), line_no);
          in.rs1 = parse_reg(t.word("rs1"), line_no);
          in.imm = t.integer("imm");
          break;
        case Opcode::kJump:
        case Opcode::kHalt:
        case Opcode::kNop:
          break;
        case Opcode::kPrefetch: {
          const std::string w = t.word("prefetch target");
          if (w.size() < 2 || w[0] != '#')
            parse_error(line_no, "expected #<instr>, got '" + w + "'");
          in.pf_target = static_cast<InstrId>(
              parse_index_word(w.substr(1), line_no, "prefetch target"));
          break;
        }
      }
      t.expect_done();
      if (instr_count >= limits.max_instructions)
        parse_error(line_no, "more than " +
                                 std::to_string(limits.max_instructions) +
                                 " instructions");
      ++instr_count;
      program.append(current, in);
    }
  }

  if (!seen_program) parse_error(line_no, "missing program header");
  if (data_words_left > 0)
    parse_error(line_no, "data section ended " +
                             std::to_string(data_words_left) +
                             " words short");
  if (entry >= 0) {
    if (entry >= static_cast<std::int64_t>(program.num_blocks()))
      throw InvalidArgument("program text: entry block " +
                            std::to_string(entry) + " does not exist");
    program.set_entry(static_cast<BlockId>(entry));
  }
  for (const auto& [header, bound] : loop_bounds) {
    if (header >= program.num_blocks())
      throw InvalidArgument("program text: loop_bound header bb" +
                            std::to_string(header) + " does not exist");
    program.set_loop_bound(header, bound);
  }
  if (!data.empty()) program.set_data(std::move(data));
  return program;
}

}  // namespace

Program from_text(const std::string& text) {
  return parse_program(text, CodecLimits{});
}

Expected<Program> from_text_checked(const std::string& text,
                                    const CodecLimits& limits) {
  try {
    return parse_program(text, limits);
  } catch (const std::exception& e) {
    // Every malformed-input path throws InvalidArgument with the line
    // number baked in; the blanket catch is the containment backstop that
    // turns *any* residual parser escape into a structured error instead
    // of letting an untrusted payload unwind a daemon worker.
    return Status(ErrorCode::kMalformedInput, e.what());
  } catch (...) {
    return Status(ErrorCode::kMalformedInput,
                  "program text: non-standard parser exception");
  }
}

}  // namespace ucp::ir
