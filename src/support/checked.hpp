#pragma once

// Overflow-checked unsigned arithmetic for the cycle/energy accumulators.
//
// τ_w sums products of per-execution cycles and worst-case counts; on a
// pathological (or corrupted) input those can overflow std::uint64_t and
// silently wrap, which would understate a WCET bound — the one failure mode
// a sound analyzer must never have. These helpers make every such
// accumulation trap as an InternalError instead, which the sweep's task
// boundary contains like any other bug-class exception (the case is
// quarantined, the sweep survives).

#include <cstdint>
#include <string>

#include "support/check.hpp"

namespace ucp {

/// a + b, throwing InternalError on std::uint64_t overflow.
inline std::uint64_t checked_add(std::uint64_t a, std::uint64_t b,
                                 const char* what = "checked_add") {
  std::uint64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw InternalError(std::string(what) + ": uint64 overflow in " +
                        std::to_string(a) + " + " + std::to_string(b));
  }
  return out;
}

/// a * b, throwing InternalError on std::uint64_t overflow.
inline std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b,
                                 const char* what = "checked_mul") {
  std::uint64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw InternalError(std::string(what) + ": uint64 overflow in " +
                        std::to_string(a) + " * " + std::to_string(b));
  }
  return out;
}

}  // namespace ucp
