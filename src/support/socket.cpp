#include "support/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace ucp::support {

namespace {

Status sys_error(const std::string& what) {
  return Status(ErrorCode::kInternal, what + ": " + ::strerror(errno));
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// poll(2) for readability/writability; 0 on timeout, 1 when ready.
Expected<int> wait_ready(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc >= 0) return rc > 0 ? 1 : 0;
    if (errno != EINTR) return sys_error("poll");
  }
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Expected<Socket> tcp_listen(std::uint16_t port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return sys_error("socket");
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr = loopback(port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return sys_error("bind 127.0.0.1:" + std::to_string(port));
  if (::listen(s.fd(), backlog) != 0) return sys_error("listen");
  return s;
}

Expected<std::uint16_t> local_port(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0)
    return sys_error("getsockname");
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Expected<Socket> tcp_accept(const Socket& listener, int timeout_ms) {
  Expected<int> ready = wait_ready(listener.fd(), POLLIN, timeout_ms);
  if (!ready.ok()) return ready.status();
  if (*ready == 0) return Socket();  // timeout: caller polls its stop flag
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    // Transient accept hiccups (peer reset before accept, signal) behave
    // like a timeout so the accept loop just comes around again.
    if (errno == ECONNABORTED || errno == EINTR || errno == EAGAIN ||
        errno == EWOULDBLOCK)
      return Socket();
    return sys_error("accept");
  }
  return Socket(fd);
}

Expected<Socket> tcp_connect(std::uint16_t port, int timeout_ms) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return sys_error("socket");
  const sockaddr_in addr = loopback(port);
  // Blocking connect to loopback resolves immediately (accept-queue
  // admission is the kernel's, not ours); the timeout guards reads.
  (void)timeout_ms;
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    return sys_error("connect 127.0.0.1:" + std::to_string(port));
  return s;
}

Status write_all(const Socket& socket, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(socket.fd(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(ErrorCode::kInternal,
                    std::string("send: ") + ::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Expected<std::size_t> LineReader::fill() {
  Expected<int> ready = wait_ready(fd_, POLLIN, timeout_ms_);
  if (!ready.ok()) return ready.status();
  if (*ready == 0)
    return Status(ErrorCode::kMalformedInput,
                  "read timed out after " + std::to_string(timeout_ms_) +
                      "ms");
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n >= 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      return static_cast<std::size_t>(n);
    }
    if (errno != EINTR)
      return Status(ErrorCode::kMalformedInput,
                    std::string("recv: ") + ::strerror(errno));
  }
}

Expected<std::string> LineReader::read_line() {
  for (;;) {
    const std::size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      if (nl - pos_ > max_line_)
        return Status(ErrorCode::kMalformedInput,
                      "line exceeds " + std::to_string(max_line_) +
                          " bytes");
      std::string line = buffer_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
      // Compact once the consumed prefix dominates, keeping reads O(n).
      if (pos_ > 65536 && pos_ > buffer_.size() / 2) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      return line;
    }
    if (buffer_.size() - pos_ > max_line_)
      return Status(ErrorCode::kMalformedInput,
                    "line exceeds " + std::to_string(max_line_) + " bytes");
    Expected<std::size_t> got = fill();
    if (!got.ok()) return got.status();
    if (*got == 0) {
      if (pos_ == buffer_.size())
        return Status(ErrorCode::kNotFound, "connection closed");
      return Status(ErrorCode::kMalformedInput,
                    "connection closed mid-line");
    }
  }
}

Expected<std::string> LineReader::read_exact(std::size_t n) {
  while (buffer_.size() - pos_ < n) {
    Expected<std::size_t> got = fill();
    if (!got.ok()) return got.status();
    if (*got == 0)
      return Status(ErrorCode::kMalformedInput,
                    "connection closed " +
                        std::to_string(n - (buffer_.size() - pos_)) +
                        " bytes short of the declared payload");
  }
  std::string out = buffer_.substr(pos_, n);
  pos_ += n;
  if (pos_ > 65536 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return out;
}

}  // namespace ucp::support
