#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>

namespace ucp {

/// Fixed-inline-capacity vector with heap fallback, for trivially copyable
/// element types. The abstract cache domains perform millions of set joins
/// and state copies per sweep; keeping the entries inline removes the heap
/// allocation from every one of them (an abstract LRU set holds at most
/// `assoc` must-entries and a few may-entries, far below `N` in practice).
template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable types");

 public:
  SmallVector() = default;
  SmallVector(const SmallVector& other) { assign_from(other); }
  SmallVector(SmallVector&& other) noexcept { steal_from(other); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear_heap();
      assign_from(other);
    }
    return *this;
  }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear_heap();
      steal_from(other);
    }
    return *this;
  }
  ~SmallVector() { clear_heap(); }

  using iterator = T*;
  using const_iterator = const T*;

  T* data() { return heap_ ? heap_ : inline_; }
  const T* data() const { return heap_ ? heap_ : inline_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return heap_ ? heap_capacity_ : N; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& front() { return data()[0]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  void clear() { size_ = 0; }

  void push_back(const T& value) {
    reserve(size_ + 1);
    data()[size_++] = value;
  }

  void insert(iterator pos, const T& value) {
    const std::size_t at = static_cast<std::size_t>(pos - data());
    reserve(size_ + 1);
    T* d = data();
    for (std::size_t i = size_; i > at; --i) d[i] = d[i - 1];
    d[at] = value;
    ++size_;
  }

  iterator erase(iterator first, iterator last) {
    T* d = data();
    const std::size_t at = static_cast<std::size_t>(first - d);
    const std::size_t n = static_cast<std::size_t>(last - first);
    for (std::size_t i = at; i + n < size_; ++i) d[i] = d[i + n];
    size_ -= n;
    return d + at;
  }

  void resize(std::size_t n) {
    reserve(n);
    if (n > size_) std::fill(data() + size_, data() + n, T{});
    size_ = n;
  }

  void reserve(std::size_t n) {
    if (n <= capacity()) return;
    std::size_t cap = capacity() * 2;
    if (cap < n) cap = n;
    T* grown = new T[cap];
    std::copy(data(), data() + size_, grown);
    clear_heap();
    heap_ = grown;
    heap_capacity_ = cap;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void assign_from(const SmallVector& other) {
    heap_ = nullptr;
    heap_capacity_ = 0;
    size_ = other.size_;
    if (size_ > N) {
      heap_ = new T[size_];
      heap_capacity_ = size_;
    }
    std::copy(other.data(), other.data() + size_, data());
  }
  void steal_from(SmallVector& other) {
    heap_ = other.heap_;
    heap_capacity_ = other.heap_capacity_;
    size_ = other.size_;
    if (!heap_) std::copy(other.inline_, other.inline_ + size_, inline_);
    other.heap_ = nullptr;
    other.heap_capacity_ = 0;
    other.size_ = 0;
  }
  void clear_heap() {
    delete[] heap_;
    heap_ = nullptr;
    heap_capacity_ = 0;
  }

  T inline_[N];
  T* heap_ = nullptr;
  std::size_t heap_capacity_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ucp
