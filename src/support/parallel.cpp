#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace ucp::support {

void parallel_for_index(std::size_t n, std::uint32_t threads,
                        const std::function<void(std::size_t)>& fn) {
  std::atomic<std::size_t> next{0};
  // Indices >= fail_bound are abandoned; everything below it still runs, so
  // a lower-index failure can still be observed and take precedence.
  std::atomic<std::size_t> fail_bound{std::numeric_limits<std::size_t>::max()};
  std::size_t first_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::uint32_t workers =
      threads != 0 ? threads
                   : std::max(1u, std::thread::hardware_concurrency());
  // Task boundary: capture exceptions instead of letting them escape a
  // worker thread (which would std::terminate), keep the error of the
  // lowest failing index, and rethrow it on the calling thread once the
  // pool has drained.
  auto worker = [&] {
    for (;;) {
      const std::size_t idx = next.fetch_add(1);
      if (idx >= n || idx >= fail_bound.load(std::memory_order_relaxed))
        return;
      try {
        fn(idx);
      } catch (...) {
        std::size_t bound = fail_bound.load(std::memory_order_relaxed);
        while (idx < bound && !fail_bound.compare_exchange_weak(
                                  bound, idx, std::memory_order_relaxed)) {
        }
        std::lock_guard<std::mutex> lock(error_mutex);
        if (idx < first_index) {
          first_index = idx;
          first_error = std::current_exception();
        }
      }
    }
  };
  std::vector<std::thread> pool;
  for (std::uint32_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ucp::support
