#pragma once

// Minimal POSIX TCP helpers for the ucpd service layer (src/serve) and its
// load generator. Everything speaks the Status channel: a refused
// connection, a peer that hangs up mid-request, or a line beyond the size
// cap is a recoverable condition the daemon must survive, never an abort.
//
// Scope discipline: loopback service traffic only. No TLS, no name
// resolution beyond numeric IPv4 — the daemon binds 127.0.0.1 and the
// protocol layer (serve/protocol.hpp) enforces payload limits on top.

#include <cstdint>
#include <string>

#include "support/status.hpp"

namespace ucp::support {

/// Owning socket descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port). SO_REUSEADDR is set so a drained daemon can restart immediately.
Expected<Socket> tcp_listen(std::uint16_t port, int backlog);

/// The local port a listening (or connected) socket is bound to — how a
/// port-0 daemon learns and announces its actual port.
Expected<std::uint16_t> local_port(const Socket& socket);

/// Waits up to `timeout_ms` for a connection, then accepts it. Returns an
/// invalid Socket (not an error) on timeout, so an accept loop can poll a
/// shutdown flag between waits; transient accept failures (ECONNABORTED,
/// EINTR) also come back as timeout-shaped "try again".
Expected<Socket> tcp_accept(const Socket& listener, int timeout_ms);

/// Connects to 127.0.0.1:`port`, waiting up to `timeout_ms`.
Expected<Socket> tcp_connect(std::uint16_t port, int timeout_ms);

/// Writes all of `data`, handling short writes and EINTR. SIGPIPE is
/// suppressed (MSG_NOSIGNAL): a peer that hung up surfaces as a Status.
Status write_all(const Socket& socket, const std::string& data);

/// Buffered line/byte reader over a socket with hard limits: a line longer
/// than `max_line` or a read beyond the deadline is a structured error, so
/// a hostile peer cannot balloon memory or wedge a worker forever.
class LineReader {
 public:
  LineReader(const Socket& socket, std::size_t max_line, int timeout_ms)
      : fd_(socket.fd()), max_line_(max_line), timeout_ms_(timeout_ms) {}

  /// Reads up to and including the next '\n'; returns the line without it.
  /// EOF before any byte is kNotFound; EOF mid-line, an over-long line, a
  /// timeout, or a socket error is kMalformedInput.
  Expected<std::string> read_line();

  /// Reads exactly `n` bytes (the framed payload after a header).
  Expected<std::string> read_exact(std::size_t n);

 private:
  Expected<std::size_t> fill();

  int fd_ = -1;
  std::size_t max_line_ = 0;
  int timeout_ms_ = 0;
  std::string buffer_;
  std::size_t pos_ = 0;
};

}  // namespace ucp::support
