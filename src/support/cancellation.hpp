#pragma once

// Cooperative cancellation for the supervised sweep runtime.
//
// A CancellationToken is a single atomic flag owned by the supervisor (one
// per sweep worker slot). The worker installs it into thread-local storage
// with a CancelScope; the long-running kernels under it — the cache-analysis
// fixpoints, the simplex pivot loops, the interpreter step loop and the
// optimizer's candidate walk — poll `cancellation_requested()` at their
// existing budget-check cadence. The unset fast path is one thread-local
// load, so the checks are free on un-supervised runs (tests, benches,
// library users that never install a scope).
//
// Two exits exist by design:
//  - kernels that already speak the Status channel (the interpreter, the
//    optimizer's pass loop) return ErrorCode::kCancelled and degrade
//    gracefully, keeping whatever sound partial state they have;
//  - deep pure-compute kernels (fixpoints, simplex pivots) throw
//    CancelledError, which the sweep's task boundary catches and converts
//    into a quarantined row. Everything in between is RAII, so the throw is
//    safe, and the retry ladder then re-runs the case with a fresh token.

#include <atomic>
#include <stdexcept>
#include <string>

namespace ucp {

/// One supervisor-owned cancellation flag. `cancel()` may be called from any
/// thread (the watchdog); `cancelled()` is a relaxed load. Reset between
/// tasks by the owning worker only.
class CancellationToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

namespace detail {
inline thread_local const CancellationToken* g_cancel_token = nullptr;
}

/// Installs `token` as the calling thread's active token for the scope's
/// lifetime; nests (the previous token is restored on exit).
class CancelScope {
 public:
  explicit CancelScope(const CancellationToken* token)
      : previous_(detail::g_cancel_token) {
    detail::g_cancel_token = token;
  }
  ~CancelScope() { detail::g_cancel_token = previous_; }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancellationToken* previous_;
};

/// True iff the calling thread runs under a cancelled token. Cheap enough
/// for per-pivot polling: a thread-local load plus, when a scope is
/// installed, one relaxed atomic load.
inline bool cancellation_requested() {
  const CancellationToken* token = detail::g_cancel_token;
  return token != nullptr && token->cancelled();
}

/// Thrown by deep compute kernels on cancellation; the sweep task boundary
/// converts it into a quarantined (kCancelled) row.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& where)
      : std::runtime_error("cancelled by supervisor in " + where) {}
};

inline void throw_if_cancelled(const char* where) {
  if (cancellation_requested()) throw CancelledError(where);
}

}  // namespace ucp
