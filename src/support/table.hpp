#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ucp {

/// Column-aligned ASCII table for bench/experiment output. Benches print the
/// same rows the paper's tables/figures report; this keeps them legible.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal separator before the next row.
  void add_separator();

  std::size_t rows() const { return rows_.size(); }
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Minimal CSV writer (RFC-4180 quoting) so experiment output can feed
/// external plotting without any extra dependency.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void write_row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& os_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string format_double(double value, int precision = 3);
/// Formats a ratio as a signed percentage change, e.g. 0.888 -> "-11.2%".
std::string format_pct_change(double ratio, int precision = 1);

}  // namespace ucp
