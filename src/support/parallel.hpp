#pragma once

// Shared worker-pool index loop.
//
// One primitive serves every fan-out in the tree (sweep grids, fuzz
// campaigns, micro benches): run fn(0..n-1) on a pool of `threads` workers
// pulling indices from an atomic cursor.
//
// Error discipline — deterministic first-*index* propagation: when fn
// throws, the exception surfacing to the caller is the one from the LOWEST
// failing index, not from whichever thread happened to fail first.
// Concretely:
//  - a failure at index k stops the claiming of indices > k (indices below
//    k that are already claimed or still claimable keep running, because in
//    the sequential semantics they would have run before k);
//  - a later failure at a lower index replaces the recorded error;
//  - after the pool drains, the recorded (lowest-index) exception is
//    rethrown on the calling thread.
// With failure a deterministic property of the index, the surfaced error is
// therefore identical at every thread count, matching threads == 1.

#include <cstddef>
#include <cstdint>
#include <functional>

namespace ucp::support {

/// Runs fn(0..n-1) on a worker pool (0 threads = hardware concurrency).
/// Exceptions follow the deterministic first-failing-index discipline
/// documented above; indices greater than the lowest failing index may be
/// abandoned (never silently: the rethrown error marks the run failed).
void parallel_for_index(std::size_t n, std::uint32_t threads,
                        const std::function<void(std::size_t)>& fn);

}  // namespace ucp::support
