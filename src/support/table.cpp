#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace ucp {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  UCP_REQUIRE(!header_.empty(), "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  UCP_REQUIRE(cells.size() == header_.size(),
              "row arity must match the header");
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());
  }

  auto print_line = [&](char fill) {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << fill;
      os << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left
         << cells[c] << " |";
    os << '\n';
  };

  print_line('-');
  print_cells(header_);
  print_line('=');
  for (const Row& row : rows_) {
    if (row.separator) {
      print_line('-');
    } else {
      print_cells(row.cells);
    }
  }
  print_line('-');
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_pct_change(double ratio, int precision) {
  std::ostringstream os;
  const double pct = (ratio - 1.0) * 100.0;
  os << std::fixed << std::setprecision(precision) << std::showpos << pct
     << '%';
  return os.str();
}

}  // namespace ucp
