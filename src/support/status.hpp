#pragma once

// Status / Expected<T>: the recoverable-error channel of the pipeline.
//
// Exceptions (UCP_CHECK / UCP_REQUIRE) remain the channel for *bugs and API
// misuse*; Status is the channel for failures that a production sweep must
// survive: solver budget exhaustion, runaway simulations, wall-clock
// deadlines, corrupt memo files. Any stage that can fail recoverably returns
// Status (or Expected<T>) so the experiment harness can quarantine the use
// case and degrade to the identity transform instead of dying (the identity
// transform — ship the original binary — trivially satisfies Theorem 1, so
// the pipeline never has to crash to stay correct).

#include <optional>
#include <string>
#include <utility>

#include "support/check.hpp"

namespace ucp {

/// Recoverable failure classes, shared across modules.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kIterationLimit,       ///< ILP pivot / branch-and-bound node budget
  kStepBudgetExhausted,  ///< interpreter dynamic instruction budget
  kDeadlineExceeded,     ///< wall-clock budget of an optimization run
  kLoopBoundViolated,    ///< declared flow fact contradicted concretely
  kAnalysisFailed,       ///< cache/WCET analysis could not complete
  kInfeasible,           ///< ILP infeasible
  kUnbounded,            ///< ILP unbounded
  kCorruptCache,         ///< sweep memo file failed validation
  kNotFound,             ///< expected file absent
  kFaultInjected,        ///< forced by the fault-injection registry
  kDegraded,             ///< result fell back to the safe identity transform
  kInternal,             ///< unexpected exception contained at a boundary
  kCancelled,            ///< cooperatively cancelled (watchdog / SIGINT)
  kAuditFailed,          ///< soundness auditor contradicted the optimizer
  kMalformedInput,       ///< untrusted input failed parsing/validation
  kOverloaded,           ///< admission control shed the request (retry later)
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kIterationLimit:
      return "iteration-limit";
    case ErrorCode::kStepBudgetExhausted:
      return "step-budget-exhausted";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kLoopBoundViolated:
      return "loop-bound-violated";
    case ErrorCode::kAnalysisFailed:
      return "analysis-failed";
    case ErrorCode::kInfeasible:
      return "infeasible";
    case ErrorCode::kUnbounded:
      return "unbounded";
    case ErrorCode::kCorruptCache:
      return "corrupt-cache";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kFaultInjected:
      return "fault-injected";
    case ErrorCode::kDegraded:
      return "degraded";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kAuditFailed:
      return "audit-failed";
    case ErrorCode::kMalformedInput:
      return "malformed-input";
    case ErrorCode::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

/// An error code plus a human-readable detail string. Default-constructed
/// Status is OK; the detail is empty for OK statuses.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string detail)
      : code_(code), detail_(std::move(detail)) {
    UCP_CHECK_MSG(code_ != ErrorCode::kOk,
                  "error Status constructed with kOk");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& detail() const { return detail_; }

  /// "<code-name>: <detail>" (or "ok").
  std::string message() const {
    if (ok()) return "ok";
    return detail_.empty() ? std::string(error_code_name(code_))
                           : std::string(error_code_name(code_)) + ": " +
                                 detail_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.detail_ == b.detail_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string detail_;
};

/// Either a value or a non-OK Status. Accessing the value of an errored
/// Expected is a UCP_CHECK failure (a bug, not a recoverable condition).
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Expected(Status status) : status_(std::move(status)) {  // NOLINT
    UCP_CHECK_MSG(!status_.ok(), "Expected built from an OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }
  ErrorCode code() const { return status_.code(); }

  const T& value() const& {
    UCP_CHECK_MSG(ok(), "value() on errored Expected: " + status_.message());
    return *value_;
  }
  T& value() & {
    UCP_CHECK_MSG(ok(), "value() on errored Expected: " + status_.message());
    return *value_;
  }
  T&& value() && {
    UCP_CHECK_MSG(ok(), "value() on errored Expected: " + status_.message());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace ucp
