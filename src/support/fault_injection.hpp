#pragma once

// Deterministic fault-injection registry.
//
// Compiled in always, no-op unless armed: the hot-path cost of an unarmed
// fault point is one relaxed atomic load. Tests arm a named site to force
// the failure path guarded by that site — every resource-budget check and
// I/O boundary in the pipeline carries one — and assert that the sweep
// quarantines the affected use case instead of terminating.
//
//   fault::ScopedFault f("sim.step");      // one-shot: first hit fires
//   ... run a sweep; the first simulation degrades, the sweep completes ...
//
// Sites are registered centrally in fault_injection.cpp (known_sites()) so
// property tests can enumerate them without touching every module.

#include <cstdint>
#include <string>
#include <vector>

namespace ucp::fault {

/// All registered site names, in stable order. A site listed here is
/// guaranteed to have a matching UCP_FAULT_POINT in the code.
const std::vector<std::string>& known_sites();

/// Arms `site`: its fault point returns true `shots` times (default once),
/// after `skip` additional hits are let through first (skip = 0 fires on
/// the next hit). `shots > 1` makes a retried operation fail on consecutive
/// attempts — the retry-ladder suites use it to exhaust every rung. Arming
/// an unknown site throws InvalidArgument. Re-arming resets the countdown.
void arm(const std::string& site, std::uint64_t skip = 0,
         std::uint64_t shots = 1);

/// Disarms one site / every site. Safe to call for never-armed sites.
void disarm(const std::string& site);
void disarm_all();

/// Number of times `site`'s fault point was evaluated while any site was
/// armed (hit accounting is off on the unarmed fast path by design).
std::uint64_t hit_count(const std::string& site);

/// True iff the site should fail now; consumes the armed state when firing.
/// The unarmed fast path is a single relaxed atomic load.
bool should_fail(const char* site);

/// RAII arming for tests: disarms the site on scope exit.
class ScopedFault {
 public:
  explicit ScopedFault(std::string site, std::uint64_t skip = 0,
                       std::uint64_t shots = 1)
      : site_(std::move(site)) {
    arm(site_, skip, shots);
  }
  ~ScopedFault() { disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace ucp::fault

/// Evaluates to true when the named site is armed and due to fire. Usable in
/// any boolean context: `if (over_budget || UCP_FAULT_POINT("ilp.pivot"))`.
#define UCP_FAULT_POINT(site) (::ucp::fault::should_fail(site))
