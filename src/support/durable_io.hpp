#pragma once

// POSIX durability helpers for the crash-safe sweep artifacts (journal,
// memo cache). A rename alone publishes atomically but does not persist: a
// power loss can still surface the old name, a zero-length file, or a torn
// tail. The durable sequence is fsync(temp) → rename → fsync(parent dir),
// and append-style writers fsync their descriptor after each batch.

#include <string>

#include "support/status.hpp"

namespace ucp::support {

/// fsync(2) the file at `path` (opened read-only; Linux permits that).
Status fsync_path(const std::string& path);

/// fsync(2) the parent directory of `path`, making a rename/creation of the
/// entry itself durable.
Status fsync_parent(const std::string& path);

/// fsync(2) an already-open descriptor.
Status fsync_fd(int fd, const std::string& what);

}  // namespace ucp::support
