#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ucp {

/// Error thrown when an internal invariant is violated. All UCP_CHECK
/// failures funnel through this type so tests can assert on misuse.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Error thrown when user-supplied input (program, configuration) is invalid.
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what)
      : std::invalid_argument(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw InternalError(os.str());
}

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& message) {
  std::ostringstream os;
  os << "requirement violated: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw InvalidArgument(os.str());
}

}  // namespace detail
}  // namespace ucp

/// Internal invariant; failure indicates a bug in this library.
#define UCP_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr))                                                       \
      ::ucp::detail::check_failed("UCP_CHECK", #expr, __FILE__,        \
                                  __LINE__, std::string());            \
  } while (false)

#define UCP_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr))                                                       \
      ::ucp::detail::check_failed("UCP_CHECK", #expr, __FILE__,        \
                                  __LINE__, (msg));                    \
  } while (false)

/// Precondition on caller-supplied data; failure indicates API misuse.
#define UCP_REQUIRE(expr, msg)                                         \
  do {                                                                 \
    if (!(expr))                                                       \
      ::ucp::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
