#pragma once

#include <cstdint>

#include "support/check.hpp"

namespace ucp {

/// Deterministic xoshiro256** generator. Experiments must be bit-reproducible
/// across platforms, so no std::random device/engine is used anywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the full state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    UCP_REQUIRE(bound > 0, "Rng::next_below requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    UCP_REQUIRE(lo <= hi, "Rng::next_in requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) {
    return next_double() < p_true;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

/// Derives an independent per-stream seed from a campaign root seed.
/// Case i of a fuzz campaign always seeds its Rng with
/// `split_seed(root, i)`, so a single case can be replayed in isolation
/// (and a resumed campaign continues bit-identically) without replaying
/// the generator stream of every preceding case. Two SplitMix64 finalizer
/// rounds over (root, stream) decorrelate adjacent stream indices.
inline std::uint64_t split_seed(std::uint64_t root, std::uint64_t stream) {
  std::uint64_t z = root + 0x9e3779b97f4a7c15ULL * (stream + 1);
  for (int round = 0; round < 2; ++round) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    z += 0x9e3779b97f4a7c15ULL;
  }
  return z;
}

}  // namespace ucp
