#include "support/fault_injection.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>

#include "support/check.hpp"

namespace ucp::fault {

namespace {

// Every fault point in the codebase, by module. Adding a site requires
// adding both the UCP_FAULT_POINT call and an entry here, which is what
// lets the property suite enumerate and arm each path.
const char* const kSites[] = {
    "ilp.pivot",       // simplex pivot budget check
    "ilp.bb_node",     // branch-and-bound node budget check
    "sim.step",        // interpreter dynamic instruction budget check
    "wcet.solve",      // IPET solve boundary
    "core.reanalyze",  // per-candidate re-analysis in the optimizer
    "core.deadline",   // per-use-case wall-clock deadline check
    "exp.measure",     // analyze+simulate boundary of one binary
    "exp.task",        // sweep worker task boundary (arbitrary exception)
    "exp.cache_read",  // sweep memo load boundary
    "exp.cache_write", // sweep memo save boundary
    "io.journal_write",   // sweep journal append (durable checkpoint write)
    "io.journal_kill",    // hard-kill (SIGKILL) mid-append, torn record left
    "supervisor.cancel",  // watchdog cancellation at task registration
    "audit.mismatch",     // soundness auditor forced to report a violation
    "obs.sink_write",     // trace/metrics sink I/O (degrades to a warning)
    "obs.flight_dump",    // flight-recorder dump I/O (degrades to a warning)
    "gen.build",          // synthetic generator program-construction boundary
    "fuzz.oracle",        // forced oracle violation (pins the triage path)
    "fuzz.shrink",        // shrink-step boundary (abandons minimization)
    "serve.accept",        // daemon accept boundary (connection dropped)
    "serve.read",          // request read boundary (connection dropped)
    "serve.parse",         // request parse boundary (structured error reply)
    "serve.process",       // per-request pipeline boundary (contained)
    "serve.journal_write", // request-journal append (journaling disabled)
    "serve.respond",       // response write boundary (connection dropped)
    "serve.admin_write",   // admin-plane scrape write (connection dropped)
};

struct SiteState {
  bool armed = false;
  std::uint64_t countdown = 0;  ///< hits to let through before firing
  std::uint64_t shots = 1;      ///< firings left before auto-disarm
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, SiteState> sites;

  Registry() {
    for (const char* s : kSites) sites.emplace(s, SiteState{});
  }

  SiteState& state(const std::string& site) {
    auto it = sites.find(site);
    UCP_REQUIRE(it != sites.end(),
                "unknown fault-injection site '" + site + "'");
    return it->second;
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

// Count of currently armed sites; the unarmed fast path reads only this.
std::atomic<int> g_armed_count{0};

}  // namespace

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> names(std::begin(kSites),
                                              std::end(kSites));
  return names;
}

void arm(const std::string& site, std::uint64_t skip,
         std::uint64_t shots) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  SiteState& s = r.state(site);
  if (!s.armed) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  s.armed = true;
  s.countdown = skip;
  s.shots = std::max<std::uint64_t>(1, shots);
}

void disarm(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  SiteState& s = r.state(site);
  if (s.armed) g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  s.armed = false;
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, s] : r.sites) {
    if (s.armed) g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    s.armed = false;
  }
}

std::uint64_t hit_count(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.state(site).hits;
}

bool should_fail(const char* site) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return false;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  SiteState& s = r.state(site);
  ++s.hits;
  if (!s.armed) return false;
  if (s.countdown > 0) {
    --s.countdown;
    return false;
  }
  if (--s.shots == 0) {  // fires `shots` times, then auto-disarms
    s.armed = false;
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace ucp::fault
