#pragma once

#include <cstddef>
#include <vector>

namespace ucp {

/// Streaming summary statistics (Welford's algorithm for the variance).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects samples and answers order statistics. Used for the per-use-case
/// scatter data behind Figure 7 (max/median/quantiles of WCET ratios).
class SampleSet {
 public:
  void add(double x);
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  /// Quantile in [0,1] by linear interpolation between closest ranks.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Geometric mean accumulator for ratio metrics.
class GeoMean {
 public:
  void add(double ratio);
  std::size_t count() const { return count_; }
  double value() const;

 private:
  double log_sum_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace ucp
