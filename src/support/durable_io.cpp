#include "support/durable_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ucp::support {

namespace {

Status io_error(const std::string& what) {
  return Status(ErrorCode::kInternal, what + ": " + std::strerror(errno));
}

}  // namespace

Status fsync_fd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) return io_error("fsync " + what);
  return Status::Ok();
}

Status fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return io_error("open '" + path + "' for fsync");
  Status s = fsync_fd(fd, "'" + path + "'");
  ::close(fd);
  return s;
}

Status fsync_parent(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return io_error("open directory '" + dir + "' for fsync");
  Status s = fsync_fd(fd, "directory '" + dir + "'");
  ::close(fd);
  return s;
}

}  // namespace ucp::support
