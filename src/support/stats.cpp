#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace ucp {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  UCP_REQUIRE(count_ > 0, "mean of empty RunningStats");
  return mean_;
}

double RunningStats::variance() const {
  UCP_REQUIRE(count_ > 1, "variance needs at least two samples");
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  UCP_REQUIRE(count_ > 0, "min of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  UCP_REQUIRE(count_ > 0, "max of empty RunningStats");
  return max_;
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void SampleSet::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleSet::mean() const {
  UCP_REQUIRE(!samples_.empty(), "mean of empty SampleSet");
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  ensure_sorted();
  UCP_REQUIRE(!sorted_.empty(), "min of empty SampleSet");
  return sorted_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  UCP_REQUIRE(!sorted_.empty(), "max of empty SampleSet");
  return sorted_.back();
}

double SampleSet::quantile(double q) const {
  ensure_sorted();
  UCP_REQUIRE(!sorted_.empty(), "quantile of empty SampleSet");
  UCP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

void GeoMean::add(double ratio) {
  UCP_REQUIRE(ratio > 0.0, "geometric mean requires positive ratios");
  log_sum_ += std::log(ratio);
  ++count_;
}

double GeoMean::value() const {
  UCP_REQUIRE(count_ > 0, "geometric mean of no samples");
  return std::exp(log_sum_ / static_cast<double>(count_));
}

}  // namespace ucp
